// Package dt implements the decision-tree classifier WiSeDB learns its
// workload-management models with (§4.5). The paper uses Weka's J48, an
// implementation of C4.5; this package reproduces the relevant subset from
// scratch: binary splits on numeric features (booleans are encoded 0/1),
// split selection by information gain ratio, and C4.5-style pessimistic
// error pruning.
//
// Trees map feature vectors extracted from scheduling-graph vertices (§4.4)
// to actions (place a template / rent a VM type); see Figure 6 of the paper
// for the intended shape.
package dt

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Dataset is a labeled training set: X[i] is a feature vector, Y[i] its
// class label in [0, NumLabels).
type Dataset struct {
	// FeatureNames names each column of X, for rendering and debugging.
	FeatureNames []string
	// X holds one row per training instance.
	X [][]float64
	// Y holds the class label of each row.
	Y []int
	// NumLabels is the size of the label domain.
	NumLabels int
}

// Add appends a labeled instance.
func (d *Dataset) Add(x []float64, y int) {
	if len(d.X) > 0 && len(x) != len(d.X[0]) {
		panic(fmt.Sprintf("dt: instance has %d features, dataset has %d", len(x), len(d.X[0])))
	}
	if y < 0 || y >= d.NumLabels {
		panic(fmt.Sprintf("dt: label %d outside [0,%d)", y, d.NumLabels))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Ingest appends a batch of labeled instances. It is the streaming entry
// point for pipelined dataset construction — the trainer folds each solved
// sample generation into the dataset while later generations are still
// searching — and is defined as exactly Add row by row: same validation,
// same final order, so a dataset built from streamed batches is identical
// to one built by a single post-hoc loop.
func (d *Dataset) Ingest(X [][]float64, Y []int) {
	if len(X) != len(Y) {
		panic(fmt.Sprintf("dt: Ingest with %d rows and %d labels", len(X), len(Y)))
	}
	// Grow geometrically, not to the exact need: a training run ingests
	// one small batch per optimal path, and exact growth would reallocate
	// the whole dataset on every batch (quadratic in the row count).
	if need := len(d.X) + len(X); cap(d.X) < need {
		newCap := 2 * cap(d.X)
		if newCap < need {
			newCap = need
		}
		grown := make([][]float64, len(d.X), newCap)
		copy(grown, d.X)
		d.X = grown
		grownY := make([]int, len(d.Y), newCap)
		copy(grownY, d.Y)
		d.Y = grownY
	}
	for i, x := range X {
		d.Add(x, Y[i])
	}
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// Node is a decision-tree node. Internal nodes test x[Feature] < Threshold
// and descend Left on true, Right on false. Leaves predict Label.
type Node struct {
	Leaf      bool
	Label     int
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node
	// n and errs carry the training distribution used by pruning:
	// instances reaching the node and instances misclassified by the
	// node's majority label.
	n    int
	errs int
}

// Tree is a trained decision-tree classifier.
type Tree struct {
	Root         *Node
	FeatureNames []string
	NumLabels    int
}

// Config tunes training.
type Config struct {
	// MinLeaf is the minimum number of instances in a leaf (J48's -M,
	// default 2).
	MinLeaf int
	// MaxDepth bounds tree depth; 0 means unlimited.
	MaxDepth int
	// Prune enables C4.5 pessimistic error pruning (on by default in
	// J48); confidence is PruneConfidence (J48's -C, default 0.25).
	Prune           bool
	PruneConfidence float64
}

// DefaultConfig mirrors J48's defaults.
func DefaultConfig() Config {
	return Config{MinLeaf: 2, MaxDepth: 0, Prune: true, PruneConfidence: 0.25}
}

// Train fits a decision tree to the dataset. Training is deterministic:
// ties between splits are broken by feature index, then threshold.
func Train(ds *Dataset, cfg Config) *Tree {
	if ds.Len() == 0 {
		panic("dt: Train on empty dataset")
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	if cfg.PruneConfidence <= 0 {
		cfg.PruneConfidence = 0.25
	}
	b := &builder{ds: ds, cfg: cfg}
	root := b.build(b.presort(), 0)
	if cfg.Prune {
		z := normalUpperQuantile(cfg.PruneConfidence)
		pruneNode(root, z)
	}
	return &Tree{Root: root, FeatureNames: ds.FeatureNames, NumLabels: ds.NumLabels}
}

// Predict returns the class label for a feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.Root
	for !n.Leaf {
		if x[n.Feature] < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// Height returns the height of the tree (a single leaf has height 1).
func (t *Tree) Height() int { return height(t.Root) }

func height(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	l, r := height(n.Left), height(n.Right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Dump renders the tree in an indented text form resembling the paper's
// Figure 6. labelName maps class labels to action names.
func (t *Tree) Dump(labelName func(int) string) string {
	var b strings.Builder
	dumpNode(&b, t.Root, t.FeatureNames, labelName, 0)
	return b.String()
}

func dumpNode(b *strings.Builder, n *Node, features []string, labelName func(int) string, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Leaf {
		fmt.Fprintf(b, "%s=> %s (n=%d)\n", indent, labelName(n.Label), n.n)
		return
	}
	name := fmt.Sprintf("f%d", n.Feature)
	if n.Feature < len(features) {
		name = features[n.Feature]
	}
	fmt.Fprintf(b, "%s%s < %.4g?\n", indent, name, n.Threshold)
	dumpNode(b, n.Left, features, labelName, depth+1)
	dumpNode(b, n.Right, features, labelName, depth+1)
}

type builder struct {
	ds  *Dataset
	cfg Config
	// inLeft marks, during one split's partition, which rows fall on the
	// left of the threshold; indexed by row, cleared after each use. A
	// single scratch suffices because the build is depth-first.
	inLeft []bool
}

// pair is one row projected onto a single feature, packed so presort
// compares values without indirecting through the row storage.
type pair struct {
	v float64
	i int32
}

// maxDistinctBuckets bounds the distinct-value table the counting-sort
// presort path maintains; features with more distinct values fall back to
// a comparison sort.
const maxDistinctBuckets = 512

// presort builds, once per training run, the row indices sorted by each
// feature's value (ties by row index, so the order — and therefore the
// whole build — is deterministic). build partitions these lists stably at
// every split, so no node ever re-sorts: the classic C4.5 presorting
// optimization, turning the per-node split scan from O(F·n log n) into
// O(F·n).
//
// The features this package serves (template counts, 0/1 booleans, waits
// quantized to template latencies) have few distinct values, so each
// feature is ordered by a stable counting sort over its distinct-value
// table — O(n log d) with d small — rather than a comparison sort;
// high-cardinality features fall back to comparison sorting.
func (b *builder) presort() [][]int32 {
	n := b.ds.Len()
	sorted := make([][]int32, len(b.ds.X[0]))
	distinct := make([]float64, 0, maxDistinctBuckets)
	bucketOf := make([]int32, n)
	offs := make([]int32, maxDistinctBuckets+1)
	for f := range sorted {
		distinct = distinct[:0]
		bucketed := true
		for i := 0; i < n; i++ {
			pos, found := slices.BinarySearch(distinct, b.ds.X[i][f])
			if !found {
				if len(distinct) == maxDistinctBuckets {
					bucketed = false
					break
				}
				distinct = slices.Insert(distinct, pos, b.ds.X[i][f])
			}
		}
		if !bucketed {
			sorted[f] = b.comparisonSort(f)
			continue
		}
		for i := range offs[:len(distinct)+1] {
			offs[i] = 0
		}
		for i := 0; i < n; i++ {
			pos, _ := slices.BinarySearch(distinct, b.ds.X[i][f])
			bucketOf[i] = int32(pos)
			offs[pos+1]++
		}
		for d := 1; d <= len(distinct); d++ {
			offs[d] += offs[d-1]
		}
		s := make([]int32, n)
		for i := 0; i < n; i++ {
			s[offs[bucketOf[i]]] = int32(i)
			offs[bucketOf[i]]++
		}
		sorted[f] = s
	}
	return sorted
}

// comparisonSort orders the rows by feature f's value (ties by row index):
// the presort fallback for features with many distinct values.
func (b *builder) comparisonSort(f int) []int32 {
	pairs := make([]pair, b.ds.Len())
	for i, x := range b.ds.X {
		pairs[i] = pair{v: x[f], i: int32(i)}
	}
	slices.SortFunc(pairs, func(a, c pair) int {
		if a.v < c.v {
			return -1
		}
		if a.v > c.v {
			return 1
		}
		return int(a.i - c.i)
	})
	s := make([]int32, len(pairs))
	for i, p := range pairs {
		s[i] = p.i
	}
	return s
}

// build grows a subtree over the partition held in sorted: one per-feature
// value-ordered list of the same row set (sorted[0] doubles as the row
// enumeration).
func (b *builder) build(sorted [][]int32, depth int) *Node {
	rows := sorted[0]
	counts := make([]int, b.ds.NumLabels)
	for _, i := range rows {
		counts[b.ds.Y[i]]++
	}
	label, labelCount := majority(counts)
	node := &Node{Label: label, n: len(rows), errs: len(rows) - labelCount}
	if labelCount == len(rows) || len(rows) < 2*b.cfg.MinLeaf ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		node.Leaf = true
		return node
	}
	feature, threshold, ok := b.bestSplit(sorted, counts)
	if !ok {
		node.Leaf = true
		return node
	}
	// Stable-partition every feature's list by the split predicate: each
	// child's lists stay value-ordered, so the children need no sorting.
	// The predicate is evaluated once per row into the scratch bitmap, so
	// the F partition passes do one byte load per element instead of two
	// dependent pointer chases.
	if b.inLeft == nil {
		b.inLeft = make([]bool, b.ds.Len())
	}
	nLeft := 0
	for _, i := range rows {
		if b.ds.X[i][feature] < threshold {
			b.inLeft[i] = true
			nLeft++
		}
	}
	left := make([][]int32, len(sorted))
	right := make([][]int32, len(sorted))
	for f, sf := range sorted {
		lf := make([]int32, 0, nLeft)
		rf := make([]int32, 0, len(rows)-nLeft)
		for _, i := range sf {
			if b.inLeft[i] {
				lf = append(lf, i)
			} else {
				rf = append(rf, i)
			}
		}
		left[f], right[f] = lf, rf
	}
	for _, i := range rows {
		b.inLeft[i] = false
	}
	node.Feature = feature
	node.Threshold = threshold
	node.Left = b.build(left, depth+1)
	node.Right = b.build(right, depth+1)
	return node
}

// bestSplit finds the (feature, threshold) with the highest gain ratio
// among splits with positive information gain that respect MinLeaf. Ties
// are broken toward the lower feature index (features scan in order and a
// later candidate must beat the incumbent by more than 1e-12).
func (b *builder) bestSplit(sorted [][]int32, counts []int) (feature int, threshold float64, ok bool) {
	n := len(sorted[0])
	base := entropy(counts, n)
	bestRatio := 0.0
	leftCounts := make([]int, b.ds.NumLabels)
	rightCounts := make([]int, b.ds.NumLabels)
	for f, sf := range sorted {
		if b.ds.X[sf[0]][f] == b.ds.X[sf[n-1]][f] {
			continue // constant within the partition: nothing to split on
		}
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		copy(rightCounts, counts)
		nLeft := 0
		for j := 0; j < n-1; j++ {
			i := sf[j]
			leftCounts[b.ds.Y[i]]++
			rightCounts[b.ds.Y[i]]--
			nLeft++
			v, next := b.ds.X[i][f], b.ds.X[sf[j+1]][f]
			if v == next {
				continue // threshold must separate distinct values
			}
			nRight := n - nLeft
			if nLeft < b.cfg.MinLeaf || nRight < b.cfg.MinLeaf {
				continue
			}
			pl := float64(nLeft) / float64(n)
			gain := base - pl*entropy(leftCounts, nLeft) - (1-pl)*entropy(rightCounts, nRight)
			if gain <= 1e-12 {
				continue
			}
			splitInfo := -pl*math.Log2(pl) - (1-pl)*math.Log2(1-pl)
			if splitInfo <= 1e-12 {
				continue
			}
			ratio := gain / splitInfo
			if ratio > bestRatio+1e-12 {
				bestRatio = ratio
				feature = f
				threshold = midpoint(v, next)
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// midpoint returns a threshold strictly between a and b (a < b), robust to
// the large sentinel values used for "infinite cost" features.
func midpoint(a, b float64) float64 {
	m := a + (b-a)/2
	if m <= a { // adjacent floats
		m = b
	}
	return m
}

func majority(counts []int) (label, count int) {
	for l, c := range counts {
		if c > count {
			label, count = l, c
		}
	}
	return label, count
}

func entropy(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		e -= p * math.Log2(p)
	}
	return e
}
