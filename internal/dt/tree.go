// Package dt implements the decision-tree classifier WiSeDB learns its
// workload-management models with (§4.5). The paper uses Weka's J48, an
// implementation of C4.5; this package reproduces the relevant subset from
// scratch: binary splits on numeric features (booleans are encoded 0/1),
// split selection by information gain ratio, and C4.5-style pessimistic
// error pruning.
//
// Trees map feature vectors extracted from scheduling-graph vertices (§4.4)
// to actions (place a template / rent a VM type); see Figure 6 of the paper
// for the intended shape.
package dt

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dataset is a labeled training set: X[i] is a feature vector, Y[i] its
// class label in [0, NumLabels).
type Dataset struct {
	// FeatureNames names each column of X, for rendering and debugging.
	FeatureNames []string
	// X holds one row per training instance.
	X [][]float64
	// Y holds the class label of each row.
	Y []int
	// NumLabels is the size of the label domain.
	NumLabels int
}

// Add appends a labeled instance.
func (d *Dataset) Add(x []float64, y int) {
	if len(d.X) > 0 && len(x) != len(d.X[0]) {
		panic(fmt.Sprintf("dt: instance has %d features, dataset has %d", len(x), len(d.X[0])))
	}
	if y < 0 || y >= d.NumLabels {
		panic(fmt.Sprintf("dt: label %d outside [0,%d)", y, d.NumLabels))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// Node is a decision-tree node. Internal nodes test x[Feature] < Threshold
// and descend Left on true, Right on false. Leaves predict Label.
type Node struct {
	Leaf      bool
	Label     int
	Feature   int
	Threshold float64
	Left      *Node
	Right     *Node
	// n and errs carry the training distribution used by pruning:
	// instances reaching the node and instances misclassified by the
	// node's majority label.
	n    int
	errs int
}

// Tree is a trained decision-tree classifier.
type Tree struct {
	Root         *Node
	FeatureNames []string
	NumLabels    int
}

// Config tunes training.
type Config struct {
	// MinLeaf is the minimum number of instances in a leaf (J48's -M,
	// default 2).
	MinLeaf int
	// MaxDepth bounds tree depth; 0 means unlimited.
	MaxDepth int
	// Prune enables C4.5 pessimistic error pruning (on by default in
	// J48); confidence is PruneConfidence (J48's -C, default 0.25).
	Prune           bool
	PruneConfidence float64
}

// DefaultConfig mirrors J48's defaults.
func DefaultConfig() Config {
	return Config{MinLeaf: 2, MaxDepth: 0, Prune: true, PruneConfidence: 0.25}
}

// Train fits a decision tree to the dataset. Training is deterministic:
// ties between splits are broken by feature index, then threshold.
func Train(ds *Dataset, cfg Config) *Tree {
	if ds.Len() == 0 {
		panic("dt: Train on empty dataset")
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	if cfg.PruneConfidence <= 0 {
		cfg.PruneConfidence = 0.25
	}
	idx := make([]int, ds.Len())
	for i := range idx {
		idx[i] = i
	}
	b := &builder{ds: ds, cfg: cfg}
	root := b.build(idx, 0)
	if cfg.Prune {
		z := normalUpperQuantile(cfg.PruneConfidence)
		pruneNode(root, z)
	}
	return &Tree{Root: root, FeatureNames: ds.FeatureNames, NumLabels: ds.NumLabels}
}

// Predict returns the class label for a feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.Root
	for !n.Leaf {
		if x[n.Feature] < n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Label
}

// Height returns the height of the tree (a single leaf has height 1).
func (t *Tree) Height() int { return height(t.Root) }

func height(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	l, r := height(n.Left), height(n.Right)
	if l > r {
		return 1 + l
	}
	return 1 + r
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return countNodes(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return 1 + countNodes(n.Left) + countNodes(n.Right)
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return countLeaves(t.Root) }

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	return countLeaves(n.Left) + countLeaves(n.Right)
}

// Dump renders the tree in an indented text form resembling the paper's
// Figure 6. labelName maps class labels to action names.
func (t *Tree) Dump(labelName func(int) string) string {
	var b strings.Builder
	dumpNode(&b, t.Root, t.FeatureNames, labelName, 0)
	return b.String()
}

func dumpNode(b *strings.Builder, n *Node, features []string, labelName func(int) string, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.Leaf {
		fmt.Fprintf(b, "%s=> %s (n=%d)\n", indent, labelName(n.Label), n.n)
		return
	}
	name := fmt.Sprintf("f%d", n.Feature)
	if n.Feature < len(features) {
		name = features[n.Feature]
	}
	fmt.Fprintf(b, "%s%s < %.4g?\n", indent, name, n.Threshold)
	dumpNode(b, n.Left, features, labelName, depth+1)
	dumpNode(b, n.Right, features, labelName, depth+1)
}

type builder struct {
	ds  *Dataset
	cfg Config
}

// build grows a subtree over the instances in idx.
func (b *builder) build(idx []int, depth int) *Node {
	counts := make([]int, b.ds.NumLabels)
	for _, i := range idx {
		counts[b.ds.Y[i]]++
	}
	label, labelCount := majority(counts)
	node := &Node{Label: label, n: len(idx), errs: len(idx) - labelCount}
	if labelCount == len(idx) || len(idx) < 2*b.cfg.MinLeaf ||
		(b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth) {
		node.Leaf = true
		return node
	}
	feature, threshold, ok := b.bestSplit(idx, counts)
	if !ok {
		node.Leaf = true
		return node
	}
	var left, right []int
	for _, i := range idx {
		if b.ds.X[i][feature] < threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	node.Feature = feature
	node.Threshold = threshold
	node.Left = b.build(left, depth+1)
	node.Right = b.build(right, depth+1)
	return node
}

// bestSplit finds the (feature, threshold) with the highest gain ratio
// among splits with positive information gain that respect MinLeaf.
func (b *builder) bestSplit(idx []int, counts []int) (feature int, threshold float64, ok bool) {
	base := entropy(counts, len(idx))
	bestRatio := 0.0
	numFeatures := len(b.ds.X[idx[0]])
	type pair struct {
		v float64
		y int
	}
	pairs := make([]pair, len(idx))
	leftCounts := make([]int, b.ds.NumLabels)
	rightCounts := make([]int, b.ds.NumLabels)
	for f := 0; f < numFeatures; f++ {
		for j, i := range idx {
			pairs[j] = pair{v: b.ds.X[i][f], y: b.ds.Y[i]}
		}
		sort.Slice(pairs, func(a, c int) bool { return pairs[a].v < pairs[c].v })
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		copy(rightCounts, counts)
		nLeft := 0
		for j := 0; j < len(pairs)-1; j++ {
			leftCounts[pairs[j].y]++
			rightCounts[pairs[j].y]--
			nLeft++
			if pairs[j].v == pairs[j+1].v {
				continue // threshold must separate distinct values
			}
			nRight := len(pairs) - nLeft
			if nLeft < b.cfg.MinLeaf || nRight < b.cfg.MinLeaf {
				continue
			}
			pl := float64(nLeft) / float64(len(pairs))
			gain := base - pl*entropy(leftCounts, nLeft) - (1-pl)*entropy(rightCounts, nRight)
			if gain <= 1e-12 {
				continue
			}
			splitInfo := -pl*math.Log2(pl) - (1-pl)*math.Log2(1-pl)
			if splitInfo <= 1e-12 {
				continue
			}
			ratio := gain / splitInfo
			if ratio > bestRatio+1e-12 {
				bestRatio = ratio
				feature = f
				threshold = midpoint(pairs[j].v, pairs[j+1].v)
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// midpoint returns a threshold strictly between a and b (a < b), robust to
// the large sentinel values used for "infinite cost" features.
func midpoint(a, b float64) float64 {
	m := a + (b-a)/2
	if m <= a { // adjacent floats
		m = b
	}
	return m
}

func majority(counts []int) (label, count int) {
	for l, c := range counts {
		if c > count {
			label, count = l, c
		}
	}
	return label, count
}

func entropy(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(n)
		e -= p * math.Log2(p)
	}
	return e
}
