package heuristics

import (
	"testing"
	"time"

	"wisedb/internal/cloud"
	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

func env(n int) *schedule.Env {
	return schedule.NewEnv(workload.DefaultTemplates(n), cloud.DefaultVMTypes(1))
}

// The §3 counterexample: templates of 4, 3, 2 minutes, two queries each,
// max execution time 9 minutes. FFD and FFI both need 3 VMs; the optimum
// needs 2. This pins down the exact first-fit semantics the paper assumes.
func TestSectionThreeExample(t *testing.T) {
	templates := []workload.Template{
		{ID: 0, Name: "T1", BaseLatency: 4 * time.Minute},
		{ID: 1, Name: "T2", BaseLatency: 3 * time.Minute},
		{ID: 2, Name: "T3", BaseLatency: 2 * time.Minute},
	}
	e := schedule.NewEnv(templates, cloud.DefaultVMTypes(1))
	goal := sla.NewMaxLatency(9*time.Minute, templates, 1)
	w := &workload.Workload{Templates: templates, Queries: []workload.Query{
		{TemplateID: 0, Tag: 0}, {TemplateID: 0, Tag: 1},
		{TemplateID: 1, Tag: 2}, {TemplateID: 1, Tag: 3},
		{TemplateID: 2, Tag: 4}, {TemplateID: 2, Tag: 5},
	}}
	ffd := FFD(w, e, goal, 0)
	if got := len(ffd.VMs); got != 3 {
		t.Fatalf("FFD: paper predicts 3 VMs {[4,4],[3,3,2],[2]}, got %d: %s", got, ffd)
	}
	ffi := FFI(w, e, goal, 0)
	if got := len(ffi.VMs); got != 3 {
		t.Fatalf("FFI: paper predicts 3 VMs, got %d: %s", got, ffi)
	}
	for _, s := range []*schedule.Schedule{ffd, ffi} {
		if pen := s.Penalty(e, goal); pen != 0 {
			t.Fatalf("first-fit schedules must be penalty-free here, got %g", pen)
		}
		if err := s.Validate(e, w); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFFDOrdering(t *testing.T) {
	e := env(5)
	goal := sla.NewMaxLatency(15*time.Minute, e.Templates, 1)
	w := workload.NewSampler(e.Templates, 3).Uniform(20)
	s := FFD(w, e, goal, 0)
	// First VM's first query must be one of the longest.
	first := s.VMs[0].Queue[0].TemplateID
	if first != 4 {
		// Only if template 4 occurs in the workload.
		if w.Counts()[4] > 0 {
			t.Fatalf("FFD must start with the longest template, got T%d", first)
		}
	}
	if err := s.Validate(e, w); err != nil {
		t.Fatal(err)
	}
}

func TestFFIOrdering(t *testing.T) {
	e := env(5)
	goal := sla.NewMaxLatency(15*time.Minute, e.Templates, 1)
	w := workload.NewSampler(e.Templates, 3).Uniform(20)
	s := FFI(w, e, goal, 0)
	first := s.VMs[0].Queue[0].TemplateID
	if w.Counts()[0] > 0 && first != 0 {
		t.Fatalf("FFI must start with the shortest template, got T%d", first)
	}
}

func TestPack9Ordering(t *testing.T) {
	e := env(2)
	goal := sla.NewMaxLatency(100*time.Hour, e.Templates, 1) // no penalties: single VM
	queries := make([]workload.Query, 12)
	for i := range queries {
		tid := 0
		if i < 2 {
			tid = 1 // two long queries
		}
		queries[i] = workload.Query{TemplateID: tid, Tag: i}
	}
	w := &workload.Workload{Templates: e.Templates, Queries: queries}
	s := Pack9(w, e, goal, 0)
	if len(s.VMs) != 1 {
		t.Fatalf("loose goal: want single VM, got %d", len(s.VMs))
	}
	q := s.VMs[0].Queue
	// Pack9 emits 9 shortest, then the largest, then the rest.
	for i := 0; i < 9; i++ {
		if q[i].TemplateID != 0 {
			t.Fatalf("position %d: want short template, got T%d", i, q[i].TemplateID)
		}
	}
	if q[9].TemplateID != 1 {
		t.Fatalf("position 9: want the longest template, got T%d", q[9].TemplateID)
	}
}

// Every heuristic must place every query exactly once, for every goal type.
func TestHeuristicsComplete(t *testing.T) {
	e := env(5)
	goals := []sla.Goal{
		sla.NewMaxLatency(15*time.Minute, e.Templates, 1),
		sla.NewPerQuery(3, e.Templates, 1),
		sla.NewAverage(10*time.Minute, e.Templates, 1),
		sla.NewPercentile(90, 10*time.Minute, e.Templates, 1),
	}
	w := workload.NewSampler(e.Templates, 11).Uniform(50)
	for _, goal := range goals {
		for name, h := range map[string]func(*workload.Workload, *schedule.Env, sla.Goal, int) *schedule.Schedule{
			"FFD": FFD, "FFI": FFI, "Pack9": Pack9,
		} {
			s := h(w, e, goal, 0)
			if err := s.Validate(e, w); err != nil {
				t.Fatalf("%s under %s: %v", name, goal.Name(), err)
			}
		}
	}
}

// With a tight deadline every query gets its own VM (nothing else "fits").
func TestFirstFitTightDeadline(t *testing.T) {
	e := env(3)
	goal := sla.NewMaxLatency(e.Templates[0].BaseLatency, e.Templates, 1)
	w := workload.NewSampler(e.Templates, 4).Uniform(8)
	s := FFD(w, e, goal, 0)
	if len(s.VMs) != 8 {
		t.Fatalf("tight deadline: want 8 VMs, got %d (%s)", len(s.VMs), s)
	}
}

// A query that cannot fit anywhere still gets placed (on its own VM).
func TestFirstFitPlacesUnfittableQueries(t *testing.T) {
	e := env(3)
	// Deadline shorter than the shortest template: every placement
	// incurs a penalty.
	goal := sla.NewMaxLatency(time.Minute, e.Templates, 1)
	w := workload.NewSampler(e.Templates, 4).Uniform(5)
	s := FFI(w, e, goal, 0)
	if err := s.Validate(e, w); err != nil {
		t.Fatal(err)
	}
	if s.NumQueries() != 5 {
		t.Fatalf("all queries must be placed, got %d", s.NumQueries())
	}
}

// OrderFor pairs each SLA goal class with its §7.2 first-fit ordering.
func TestOrderFor(t *testing.T) {
	e := env(3)
	cases := []struct {
		goal sla.Goal
		want Order
	}{
		{sla.NewMaxLatency(10*time.Minute, e.Templates, 1), Decreasing},
		{sla.NewPercentile(90, 10*time.Minute, e.Templates, 1), Pack9Order},
		{sla.NewPerQuery(3, e.Templates, 1), Increasing},
		{sla.NewAverage(10*time.Minute, e.Templates, 1), Increasing},
	}
	for _, c := range cases {
		if got := OrderFor(c.goal); got != c.want {
			t.Errorf("OrderFor(%T) = %v, want %v", c.goal, got, c.want)
		}
	}
}
