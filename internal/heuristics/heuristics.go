// Package heuristics implements the metric-specific baselines WiSeDB is
// compared against (§3, §7.2): First-Fit Decreasing (FFD), First-Fit
// Increasing (FFI), and Pack9. Each sorts the workload by latency and
// places queries on the first VM where they "fit" — incur no additional
// penalty — renting a new VM when none fits.
package heuristics

import (
	"sort"
	"time"

	"wisedb/internal/schedule"
	"wisedb/internal/sla"
	"wisedb/internal/workload"
)

const eps = 1e-9

// Order selects the query ordering a first-fit pass uses.
type Order int

const (
	// Decreasing sorts queries by descending latency (FFD): the classic
	// bin-packing heuristic, suited to the Max goal.
	Decreasing Order = iota
	// Increasing sorts queries by ascending latency (FFI): suited to
	// PerQuery and Average goals [28].
	Increasing
	// Pack9Order emits the 9 shortest remaining queries then the single
	// largest, repeatedly: it pushes the most expensive queries into a
	// percentile goal's violation margin (§7.2).
	Pack9Order
)

// OrderFor returns the first-fit ordering best suited to a goal, following
// §7.2's pairing: FFD for Max (bin packing against one deadline), Pack9 for
// Percentile (push the expensive tail into the violation margin), FFI for
// everything else (PerQuery, Average). The serving engine's degraded path
// uses it to pick its fallback ordering from the epoch's goal.
func OrderFor(goal sla.Goal) Order {
	switch goal.(type) {
	case sla.MaxLatency:
		return Decreasing
	case sla.Percentile:
		return Pack9Order
	default:
		return Increasing
	}
}

// FFD schedules the workload with first-fit decreasing on VM type vmType.
func FFD(w *workload.Workload, env *schedule.Env, goal sla.Goal, vmType int) *schedule.Schedule {
	return FirstFit(w, env, goal, vmType, Decreasing)
}

// FFI schedules the workload with first-fit increasing on VM type vmType.
func FFI(w *workload.Workload, env *schedule.Env, goal sla.Goal, vmType int) *schedule.Schedule {
	return FirstFit(w, env, goal, vmType, Increasing)
}

// Pack9 schedules the workload with the Pack9 ordering on VM type vmType.
func Pack9(w *workload.Workload, env *schedule.Env, goal sla.Goal, vmType int) *schedule.Schedule {
	return FirstFit(w, env, goal, vmType, Pack9Order)
}

// FirstFit runs a first-fit pass over the workload in the given order:
// each query goes to the first VM where appending it adds no penalty, or to
// a newly rented VM when none fits. Queries that cannot avoid a penalty
// anywhere are still placed (on a fresh VM), mirroring WiSeDB's policy of
// scheduling every query as cheaply as possible rather than rejecting it.
func FirstFit(w *workload.Workload, env *schedule.Env, goal sla.Goal, vmType int, order Order) *schedule.Schedule {
	queries := orderedQueries(w, env, vmType, order)
	sched := &schedule.Schedule{}
	waits := []time.Duration{} // per-VM queued execution time
	acc := sla.NewAccumulator(goal)
	for _, q := range queries {
		lat, ok := env.Latency(q.TemplateID, vmType)
		if !ok {
			lat = 1000 * time.Hour
		}
		placed := false
		for i := range sched.VMs {
			completion := waits[i] + lat
			next := acc.Add(q.TemplateID, completion)
			if next.Penalty() <= acc.Penalty()+eps {
				sched.VMs[i].Queue = append(sched.VMs[i].Queue, schedule.Placed{TemplateID: q.TemplateID, Tag: q.Tag})
				waits[i] = completion
				acc = next
				placed = true
				break
			}
		}
		if !placed {
			sched.VMs = append(sched.VMs, schedule.VM{TypeID: vmType, Queue: []schedule.Placed{{TemplateID: q.TemplateID, Tag: q.Tag}}})
			waits = append(waits, lat)
			acc = acc.Add(q.TemplateID, lat)
		}
	}
	return sched
}

// orderedQueries returns the workload's queries in the pass order.
func orderedQueries(w *workload.Workload, env *schedule.Env, vmType int, order Order) []workload.Query {
	qs := append([]workload.Query(nil), w.Queries...)
	lat := func(q workload.Query) time.Duration {
		l, ok := env.Latency(q.TemplateID, vmType)
		if !ok {
			return 1000 * time.Hour
		}
		return l
	}
	sort.SliceStable(qs, func(i, j int) bool { return lat(qs[i]) < lat(qs[j]) })
	switch order {
	case Increasing:
		return qs
	case Decreasing:
		for i, j := 0, len(qs)-1; i < j; i, j = i+1, j-1 {
			qs[i], qs[j] = qs[j], qs[i]
		}
		return qs
	case Pack9Order:
		out := make([]workload.Query, 0, len(qs))
		lo, hi := 0, len(qs)-1
		for lo <= hi {
			for n := 0; n < 9 && lo <= hi; n++ {
				out = append(out, qs[lo])
				lo++
			}
			if lo <= hi {
				out = append(out, qs[hi])
				hi--
			}
		}
		return out
	default:
		panic("heuristics: unknown order")
	}
}
