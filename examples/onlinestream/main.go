// Online stream: schedule queries as they arrive (§6.3 of the paper),
// without knowing the future. On each arrival WiSeDB re-batches every query
// that has not started executing, accounts for the time waited, and
// re-schedules. The linear-shifting and model-reuse optimizations avoid
// re-training from scratch on (almost) every arrival.
//
// Run with:
//
//	go run ./examples/onlinestream
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"wisedb"
)

func main() {
	templates := wisedb.DefaultTemplates(6)
	env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(1))
	goal := wisedb.NewPerQuery(3, templates, wisedb.DefaultPenaltyRate)

	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = 200
	cfg.SampleSize = 10
	advisor := wisedb.MustNewAdvisor(env, cfg)

	fmt.Println("training base model...")
	base, err := advisor.Train(goal)
	if err != nil {
		log.Fatal(err)
	}

	// A stream of 40 queries with ~20s inter-arrival gaps.
	rng := rand.New(rand.NewSource(11))
	stream := wisedb.NewSampler(templates, 5).Uniform(40)
	arrivals := make([]time.Duration, 40)
	t := time.Duration(0)
	for i := range arrivals {
		arrivals[i] = t
		t += time.Duration(rng.Intn(40)) * time.Second
	}
	stream = stream.WithArrivals(arrivals)

	for _, setup := range []struct {
		name         string
		shift, reuse bool
	}{
		{"no optimizations ", false, false},
		{"shift            ", true, false},
		{"shift+reuse      ", true, true},
	} {
		opts := wisedb.DefaultOnlineOptions()
		opts.Shift = setup.shift
		opts.Reuse = setup.reuse
		opts.Retrain.NumSamples = 60
		opts.Retrain.SampleSize = 8

		sched := wisedb.NewOnlineScheduler(base, opts)
		res, err := sched.Run(stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s cost=%7.2f¢  VMs=%2d  retrain=%2d adapt=%2d cache-hits=%2d  advisor overhead=%s\n",
			setup.name, res.Cost, res.VMsRented, res.Retrainings,
			res.Adaptations, res.CacheHits, res.SchedulingTime.Round(time.Millisecond))
	}
}
