// Quickstart: train a WiSeDB decision model for a max-latency SLA and use
// it to schedule a batch workload, comparing the learned schedule's cost
// against simple baselines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"wisedb"
)

func main() {
	// The application's workload specification: ten TPC-H-like query
	// templates with latencies between 2 and 6 minutes, and one VM type
	// priced like an EC2 t2.medium.
	templates := wisedb.DefaultTemplates(10)
	vmTypes := wisedb.DefaultVMTypes(1)
	env := wisedb.NewEnv(templates, vmTypes)

	// The SLA: no query may take longer than 15 minutes, with a penalty
	// of 1 cent per second of violation.
	goal := wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)

	// Train the decision model offline. This samples random workloads,
	// solves each optimally on the scheduling graph, and fits a decision
	// tree to the optimal decisions.
	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = 250
	cfg.SampleSize = 10
	advisor := wisedb.MustNewAdvisor(env, cfg)

	fmt.Println("training decision model...")
	model, err := advisor.Train(goal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %s on %d decisions (tree height %d, %d leaves)\n\n",
		model.TrainingTime.Round(time.Millisecond), model.TrainingRows,
		model.Tree.Height(), model.Tree.NumLeaves())

	// Schedule an incoming batch of 100 queries.
	batch := wisedb.NewSampler(templates, 42).Uniform(100)
	sched, err := model.ScheduleBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled %d queries onto %d VMs\n", batch.Size(), len(sched.VMs))
	fmt.Printf("  provisioning cost: %6.2f cents\n", sched.ProvisioningCost(env))
	fmt.Printf("  SLA penalty:       %6.2f cents\n", sched.Penalty(env, goal))
	fmt.Printf("  total cost:        %6.2f cents\n\n", sched.Cost(env, goal))

	// Show part of the learned strategy, in the spirit of the paper's
	// Figure 6.
	fmt.Println("learned strategy (decision tree):")
	dump := model.Dump()
	if len(dump) > 1200 {
		dump = dump[:1200] + "  ...\n"
	}
	fmt.Print(dump)
}
