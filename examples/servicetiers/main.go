// Service tiers: explore the performance vs. cost trade-off (§6.1 of the
// paper). WiSeDB derives a ladder of alternative strategies around the
// application's goal — looser and cheaper, or stricter and costlier — by
// adaptively re-training one base model, then prunes the ladder to k
// distinct tiers using the Earth Mover's Distance between per-template cost
// profiles.
//
// Run with:
//
//	go run ./examples/servicetiers
package main

import (
	"fmt"
	"log"
	"time"

	"wisedb"
)

func main() {
	templates := wisedb.DefaultTemplates(6)
	env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(1))
	goal := wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)

	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = 200
	cfg.SampleSize = 10
	advisor := wisedb.MustNewAdvisor(env, cfg)

	rec := wisedb.DefaultRecommendConfig()
	rec.K = 3
	rec.CandidateCount = 7

	fmt.Println("deriving service tiers (train loosest, adapt stricter)...")
	start := time.Now()
	tiers, err := advisor.Recommend(goal, rec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived %d tiers in %s\n\n", len(tiers), time.Since(start).Round(time.Millisecond))

	// Estimate the cost of two anticipated workload mixes under each
	// tier using the strategies' cost-estimation functions — no
	// execution needed.
	analytic := []int{50, 50, 0, 0, 0, 0}  // short-query heavy
	reporting := []int{0, 0, 0, 0, 50, 50} // long-query heavy

	fmt.Println("tier  deadline     est. cost (short mix)  est. cost (long mix)")
	for i, tier := range tiers {
		deadline := tier.Model.Goal.(wisedb.MaxLatency).Deadline
		fmt.Printf("%4d  %-10s   %8.2f cents          %8.2f cents\n",
			i+1, deadline.Round(time.Second),
			tier.EstimateCost(analytic), tier.EstimateCost(reporting))
	}

	// Execute one real workload under each tier to show the realized
	// trade-off.
	batch := wisedb.NewSampler(templates, 7).Uniform(60)
	fmt.Println("\nrealized on a 60-query batch:")
	for i, tier := range tiers {
		sched, err := tier.Model.ScheduleBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		tierGoal := tier.Model.Goal
		fmt.Printf("  tier %d: %2d VMs, cost %6.2f cents (penalty %5.2f)\n",
			i+1, len(sched.VMs), sched.Cost(env, tierGoal), sched.Penalty(env, tierGoal))
	}
}
