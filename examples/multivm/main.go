// Multiple VM types: WiSeDB learns which queries belong on which instance
// type (§7.2, "Multiple VM Types"). Low-RAM queries run at full speed on a
// cheap t2.small, so a good strategy routes them there and reserves the
// pricier t2.medium for memory-hungry templates.
//
// Run with:
//
//	go run ./examples/multivm
package main

import (
	"fmt"
	"log"
	"time"

	"wisedb"
)

func main() {
	templates := wisedb.DefaultTemplates(6) // first half low-RAM
	goal := wisedb.NewPerQuery(3, templates, wisedb.DefaultPenaltyRate)

	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = 200
	cfg.SampleSize = 10

	batchSampler := wisedb.NewSampler(templates, 77)
	batch := batchSampler.Uniform(60)

	for _, numTypes := range []int{1, 2} {
		env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(numTypes))
		advisor := wisedb.MustNewAdvisor(env, cfg)
		model, err := advisor.Train(goal)
		if err != nil {
			log.Fatal(err)
		}
		sched, err := model.ScheduleBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		perType := map[int]int{}
		lowRAMOnSmall, highRAMOnSmall := 0, 0
		for _, vm := range sched.VMs {
			perType[vm.TypeID]++
			if vm.TypeID == 1 {
				for _, q := range vm.Queue {
					if templates[q.TemplateID].HighRAM {
						highRAMOnSmall++
					} else {
						lowRAMOnSmall++
					}
				}
			}
		}
		fmt.Printf("%d VM type(s): cost %6.2f cents, trained in %s\n",
			numTypes, sched.Cost(env, goal), model.TrainingTime.Round(time.Millisecond))
		for tid, count := range perType {
			fmt.Printf("  %-10s x%d\n", env.VMTypes[tid].Name, count)
		}
		if numTypes == 2 {
			fmt.Printf("  on t2.small: %d low-RAM queries, %d high-RAM queries\n",
				lowRAMOnSmall, highRAMOnSmall)
		}
	}
	fmt.Println("\nWith access to the cheaper type, the learned strategy should" +
		"\nroute low-RAM queries to t2.small and lower the total cost (§7.2).")
}
