// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, so CI can persist benchmark results as an artifact
// (BENCH_search.json) and the perf trajectory is diffable across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./internal/search/ | benchjson > BENCH_search.json
//
// Standard fields (ns/op, B/op, allocs/op) are lifted to named JSON fields;
// any custom b.ReportMetric units (e.g. "hitrate", "expansions/op") are
// collected under "metrics". Context lines (goos/goarch/cpu/pkg) are
// attached to every result so numbers stay comparable across machines.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line in JSON form.
type Result struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Goos        string             `json:"goos,omitempty"`
	Goarch      string             `json:"goarch,omitempty"`
	CPU         string             `json:"cpu,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	Timestamp   string             `json:"timestamp,omitempty"`
}

func main() {
	var (
		results                []Result
		pkg, goos, goarch, cpu string
	)
	now := time.Now().UTC().Format(time.RFC3339)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name: fields[0], Package: pkg, Goos: goos, Goarch: goarch,
			CPU: cpu, Iterations: iters, Timestamp: now,
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			case "MB/s":
				fallthrough
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[unit] = v
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
