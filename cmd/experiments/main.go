// Command experiments regenerates the paper's evaluation figures
// (Figs. 9-22 of §7) as text tables.
//
// Usage:
//
//	experiments [-quick] [-seed N] all
//	experiments [-quick] [-seed N] fig9 [fig10 ...]
//
// Full mode follows the paper's workload scales and can take tens of
// minutes (exact optima at 30 queries dominate); -quick shrinks everything
// to run in a few minutes. EXPERIMENTS.md records full-mode output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"wisedb/internal/experiments"
)

func main() { os.Exit(run()) }

// run carries the real main so that profile-flushing defers execute before
// the process exits.
func run() int {
	quick := flag.Bool("quick", false, "reduced workload and training scale")
	seed := flag.Int64("seed", 1, "random seed for all samplers")
	parallelism := flag.Int("parallelism", 0, "training worker goroutines (0 = all cores); models are identical for every value")
	expansionCap := flag.Int("expansion-cap", experiments.DefaultExpansionCap,
		"max expansions per exact-optimum comparator search; capped trials fall back to the best known bound and are reported in the tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file on exit (records lock hold-ups, e.g. ω-map stripe contention)")
	flag.Usage = usage
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		// Sample every mutex hold-up; the experiments are minutes long, so
		// full sampling costs little and keeps rare-but-long stalls visible.
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(*mutexprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mutexprofile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mutexprofile: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	cfg := experiments.DefaultConfig(os.Stdout)
	if *quick {
		cfg = experiments.QuickConfig(os.Stdout)
	}
	cfg.Seed = *seed
	cfg.Parallelism = *parallelism
	cfg.ExpansionCap = *expansionCap

	figs := map[string]func() error{
		"fig9":  wrap(cfg.Fig9),
		"fig10": wrap(cfg.Fig10),
		"fig11": wrap(cfg.Fig11),
		"fig12": wrap(cfg.Fig12),
		"fig13": wrap(cfg.Fig13),
		"fig14": wrap(cfg.Fig14),
		"fig15": wrap(cfg.Fig15),
		"fig16": wrap(cfg.Fig16),
		"fig17": wrap(cfg.Fig17),
		"fig18": wrap(cfg.Fig18),
		"fig19": wrap(cfg.Fig19),
		"fig20": wrap(cfg.Fig20),
		"fig21": wrap(cfg.Fig21),
		"fig22": wrap(cfg.Fig22),
		// Serving-at-scale experiments (beyond the paper; EXPERIMENTS.md
		// "Serving at scale").
		"serve":     wrap(cfg.ServeThroughput),
		"recovery":  wrap(cfg.ServeRecovery),
		"scaleout":  wrap(cfg.ServeScaleOut),
		"chaos":     wrap(cfg.Chaos),
		"scenarios": wrap(cfg.Scenarios),
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for name := range figs {
			args = append(args, name)
		}
		sort.Slice(args, func(i, j int) bool {
			return figNum(args[i]) < figNum(args[j])
		})
	}
	for _, name := range args {
		fig, ok := figs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			usage()
			return 2
		}
		start := time.Now()
		if err := fig(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			return 1
		}
		fmt.Printf("(%s took %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

func wrap(f func() (*experiments.Table, error)) func() error {
	return func() error {
		_, err := f()
		return err
	}
}

func figNum(name string) int {
	var n int
	if _, err := fmt.Sscanf(name, "fig%d", &n); err != nil {
		return 100 // non-figure experiments (serve, recovery) run last
	}
	return n
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: experiments [-quick] [-seed N] [-parallelism P] [-expansion-cap N] [-cpuprofile F] [-memprofile F] [-mutexprofile F] all | figN [figM ...]

Regenerates the evaluation figures of the WiSeDB paper (VLDB 2016, §7):
  fig9   optimality across performance metrics      fig16  adaptive re-training time
  fig10  optimality vs workload size                fig17  batch scheduling overhead
  fig11  optimality vs goal strictness              fig18  online scheduling vs optimal
  fig12  one vs two VM types                        fig19  online scheduling overhead
  fig13  WiSeDB vs FFD/FFI/Pack9                    fig20  skewed workloads
  fig14  training time vs #templates                fig21  skew vs cost range
  fig15  training time vs #VM types                 fig22  latency prediction error

Serving-at-scale experiments (beyond the paper):
  serve     multi-tenant serving throughput (K streams, p50/p99, SLA violations)
  recovery  injected mix shift: drift detection via EMD + model hot-swap recovery
  scaleout  sharded engine: 1 -> 10k tenant streams, sharded vs unsharded arrivals/sec
  chaos     fault injection: VM failures, breaker-tripping retrains, degraded fallback
  scenarios trace-driven scenario catalog: Poisson/Pareto/diurnal/flash-crowd arrivals,
            gold-bronze priority tiers, spot-style time-varying VM prices
`)
}
