package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"wisedb"
)

// daemonConfig bundles the network-daemon knobs of serve -listen.
type daemonConfig struct {
	listen, httpAddr string
	maxConns         int
	admitRate        float64
	admitBurst       int
	deadline         time.Duration
	drainGrace       time.Duration
	chaos            wisedb.ChaosSpec // Net faults wrap the listener when armed
}

// runDaemon turns serve into a long-running network daemon: listen,
// serve until SIGTERM (or ^C), then drain gracefully — stop accepting,
// flush every in-flight stream exactly once, checkpoint every registry
// — and print the final accounting. A kill mid-drain leaves the store
// at its last two-rename commit, warm-startable by construction.
func runDaemon(engine *wisedb.OnlineScheduler, ms *wisedb.ModelStore, cfg daemonConfig) {
	scfg := wisedb.ServerConfig{
		Engine:          engine,
		HTTPAddr:        cfg.httpAddr,
		MaxConns:        cfg.maxConns,
		AdmitRate:       cfg.admitRate,
		AdmitBurst:      cfg.admitBurst,
		DefaultDeadline: cfg.deadline,
		DrainGrace:      cfg.drainGrace,
	}
	if cfg.chaos.Net.Enabled() {
		ln, err := net.Listen("tcp", cfg.listen)
		if err != nil {
			log.Fatal(err)
		}
		scfg.Listener = cfg.chaos.WrapListener(ln)
		fmt.Fprintf(os.Stderr, "chaos armed at the listener: seed %d, drop rate %.2f, stall rate %.2f\n",
			cfg.chaos.Seed, cfg.chaos.Net.DropRate, cfg.chaos.Net.StallRate)
	} else {
		scfg.Addr = cfg.listen
	}
	srv, err := wisedb.NewServer(scfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "serving on %s", srv.Addr())
	if a := srv.HTTPAddr(); a != nil {
		fmt.Fprintf(os.Stderr, " (sidecar http://%s)", a)
	}
	fmt.Fprintln(os.Stderr, "; SIGTERM drains")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	fmt.Fprintf(os.Stderr, "%s: draining (grace %s)...\n", got, cfg.drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainGrace+30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}

	st := srv.Stats()
	fmt.Printf("daemon: %d conns accepted (%d rejected at the cap), %d streams served\n",
		st.AcceptedConns, st.RejectedConns, st.StreamsServed)
	fmt.Printf("arrivals: %d admitted, %d shed at admission, %d completed\n",
		st.Admitted, st.Shed, st.Completed)
	scale := st.Scale
	if scale.DeadlineMisses > 0 || scale.DegradedArrivals > 0 || scale.ShedArrivals > int64(st.Shed) {
		fmt.Printf("degradation: %d deadline misses, %d degraded arrivals, %d shed in-engine\n",
			scale.DeadlineMisses, scale.DegradedArrivals, scale.ShedArrivals-int64(st.Shed))
	}
	if st.ProtocolErrors > 0 {
		fmt.Printf("protocol errors: %d connections dropped for garbage\n", st.ProtocolErrors)
	}
	if ms != nil {
		if latest, ok := ms.LatestEpoch(); ok {
			fmt.Printf("model store %s: latest epoch %d of %d on disk\n", ms.Dir(), latest, len(ms.Entries()))
		}
	}
}
