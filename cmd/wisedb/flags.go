package main

import "fmt"

// daemonOnlyFlags are meaningful only when serve runs as a network
// daemon (-listen); setting one without -listen is silently ignored
// configuration, which validateFlags turns into an error.
var daemonOnlyFlags = []string{
	"http", "max-conns", "admit-rate", "admit-burst", "drain-grace",
	"drop-rate", "stall-rate",
}

// validateFlags rejects incoherent flag combinations up front, before
// any training or store I/O happens — a clear error beats silent
// misbehavior (a -model silently outvoted by a store epoch, a registry
// tier no stream ever binds to, a -checkpoint with nowhere to land).
// explicit holds the flag names actually given on the command line,
// which matters for flags with truthy defaults like -checkpoint.
func validateFlags(cmd string, explicit map[string]bool, modelPath, storeDir string, registries, streams int, listen string) error {
	if explicit["checkpoint"] && storeDir == "" {
		return fmt.Errorf("-checkpoint requires -store: checkpoints need a model store directory to land in")
	}
	if cmd != "serve" {
		return nil
	}
	if modelPath != "" && storeDir != "" {
		return fmt.Errorf("-model and -store are mutually exclusive: a non-empty store serves its newest epoch and would silently override the model file; warm-start with -store alone, or seed a fresh store by running serve with -store (it trains and checkpoints a base model)")
	}
	if listen == "" {
		if registries > streams {
			return fmt.Errorf("-registries %d exceeds -streams %d: streams bind to registries round-robin, so the extra tiers would never serve a stream", registries, streams)
		}
		for _, name := range daemonOnlyFlags {
			if explicit[name] {
				return fmt.Errorf("-%s only applies to the network daemon: add -listen ADDR", name)
			}
		}
	}
	return nil
}
