package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name       string
		cmd        string
		explicit   map[string]bool
		model      string
		store      string
		registries int
		streams    int
		listen     string
		wantErr    string // "" = valid
	}{
		{name: "plain serve", cmd: "serve", explicit: set(), registries: 1, streams: 16},
		{name: "model with store", cmd: "serve", explicit: set("model", "store"),
			model: "m.wsdb", store: "dir", registries: 1, streams: 16,
			wantErr: "mutually exclusive"},
		{name: "model alone", cmd: "serve", explicit: set("model"),
			model: "m.wsdb", registries: 1, streams: 16},
		{name: "store alone", cmd: "serve", explicit: set("store"),
			store: "dir", registries: 1, streams: 16},
		{name: "more registries than streams", cmd: "serve", explicit: set(),
			registries: 8, streams: 4, wantErr: "-registries 8 exceeds -streams 4"},
		{name: "registries equal streams", cmd: "serve", explicit: set(),
			registries: 4, streams: 4},
		{name: "registries exceed streams in daemon mode", cmd: "serve", explicit: set(),
			registries: 8, streams: 4, listen: ":7070"}, // streams don't apply to the daemon
		{name: "explicit checkpoint without store", cmd: "serve", explicit: set("checkpoint"),
			registries: 1, streams: 16, wantErr: "-checkpoint requires -store"},
		{name: "default checkpoint without store", cmd: "serve", explicit: set(),
			registries: 1, streams: 16}, // the truthy default alone is fine
		{name: "checkpoint with store", cmd: "serve", explicit: set("checkpoint", "store"),
			store: "dir", registries: 1, streams: 16},
		{name: "daemon flag without listen", cmd: "serve", explicit: set("admit-rate"),
			registries: 1, streams: 16, wantErr: "-admit-rate only applies to the network daemon"},
		{name: "daemon flag with listen", cmd: "serve", explicit: set("admit-rate"),
			registries: 1, streams: 16, listen: ":7070"},
		{name: "checkpoint check covers every command", cmd: "online", explicit: set("checkpoint"),
			wantErr: "-checkpoint requires -store"},
		{name: "non-serve commands skip serve rules", cmd: "train", explicit: set("model"),
			model: "m.wsdb", registries: 8, streams: 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.cmd, tc.explicit, tc.model, tc.store, tc.registries, tc.streams, tc.listen)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want one containing %q", err, tc.wantErr)
			}
		})
	}
}
