// Command wisedb is a small CLI over the WiSeDB advisor: it trains decision
// models, schedules batch workloads, recommends service tiers, and simulates
// online arrival streams — all against the synthetic TPC-H-like environment
// of the paper's evaluation (§7.1).
//
// Usage:
//
//	wisedb [flags] train      # train a model and dump the decision tree
//	wisedb [flags] schedule   # train + schedule a random batch, print costs
//	wisedb [flags] recommend  # derive k service tiers with cost estimates
//	wisedb [flags] online     # simulate an online arrival stream
//
// Common flags select the goal (-goal max|perquery|average|percentile), the
// environment (-templates, -vmtypes), training scale (-samples, -size), and
// the workload (-queries, -seed).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"wisedb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wisedb: ")

	goalName := flag.String("goal", "max", "performance goal: max, perquery, average, percentile")
	numTemplates := flag.Int("templates", 10, "number of query templates")
	numTypes := flag.Int("vmtypes", 1, "number of VM types")
	samples := flag.Int("samples", 500, "training sample workloads (N)")
	sampleSize := flag.Int("size", 12, "queries per training sample (m)")
	queries := flag.Int("queries", 100, "workload size for schedule/online")
	seed := flag.Int64("seed", 1, "random seed")
	tiers := flag.Int("k", 3, "service tiers for recommend")
	delay := flag.Duration("delay", 10*time.Second, "inter-arrival delay for online")
	parallelism := flag.Int("parallelism", 0, "training worker goroutines (0 = all cores)")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	templates := wisedb.DefaultTemplates(*numTemplates)
	env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(*numTypes))
	goal := makeGoal(*goalName, templates)

	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = *samples
	cfg.SampleSize = *sampleSize
	cfg.Seed = *seed
	cfg.Parallelism = *parallelism
	advisor, err := wisedb.NewAdvisor(env, cfg)
	if err != nil {
		log.Fatal(err)
	}

	switch flag.Arg(0) {
	case "train":
		model := mustTrain(advisor, goal)
		fmt.Printf("trained in %s on %d decisions; tree height %d, %d leaves\n\n",
			model.TrainingTime.Round(time.Millisecond), model.TrainingRows,
			model.Tree.Height(), model.Tree.NumLeaves())
		fmt.Print(model.Dump())

	case "schedule":
		model := mustTrain(advisor, goal)
		w := wisedb.NewSampler(templates, *seed+100).Uniform(*queries)
		start := time.Now()
		sched, err := model.ScheduleBatch(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scheduled %d queries onto %d VMs in %s\n",
			*queries, len(sched.VMs), time.Since(start).Round(time.Microsecond))
		fmt.Printf("provisioning %.2f¢ + penalty %.2f¢ = total %.2f¢\n",
			sched.ProvisioningCost(env), sched.Penalty(env, goal), sched.Cost(env, goal))

	case "recommend":
		rec := wisedb.DefaultRecommendConfig()
		rec.K = *tiers
		strategies, err := advisor.Recommend(goal, rec)
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, *numTemplates)
		for i := range counts {
			counts[i] = *queries / *numTemplates
		}
		fmt.Printf("%d service tiers (estimated cost for %d-query uniform workload):\n", len(strategies), *queries)
		for i, s := range strategies {
			fmt.Printf("  tier %d: %-60s est. %.2f¢\n", i+1, s.Model.Goal.Key(), s.EstimateCost(counts))
		}

	case "online":
		model := mustTrain(advisor, goal)
		w := wisedb.NewSampler(templates, *seed+100).Uniform(*queries)
		arrivals := make([]time.Duration, *queries)
		for i := range arrivals {
			arrivals[i] = time.Duration(i) * *delay
		}
		res, err := wisedb.NewOnlineScheduler(model, wisedb.DefaultOnlineOptions()).Run(w.WithArrivals(arrivals))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("online: %d queries, %d VMs, cost %.2f¢ (penalty %.2f¢)\n",
			len(res.Perf), res.VMsRented, res.Cost, res.Penalty)
		fmt.Printf("advisor overhead %s total (%d retrainings, %d adaptations, %d cache hits)\n",
			res.SchedulingTime.Round(time.Millisecond), res.Retrainings, res.Adaptations, res.CacheHits)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mustTrain(advisor *wisedb.Advisor, goal wisedb.Goal) *wisedb.Model {
	fmt.Fprintf(os.Stderr, "training %s model...\n", goal.Name())
	model, err := advisor.Train(goal)
	if err != nil {
		log.Fatal(err)
	}
	return model
}

func makeGoal(name string, templates []wisedb.Template) wisedb.Goal {
	switch name {
	case "max":
		return wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)
	case "perquery":
		return wisedb.NewPerQuery(3, templates, wisedb.DefaultPenaltyRate)
	case "average":
		return wisedb.NewAverage(10*time.Minute, templates, wisedb.DefaultPenaltyRate)
	case "percentile":
		return wisedb.NewPercentile(90, 10*time.Minute, templates, wisedb.DefaultPenaltyRate)
	default:
		log.Fatalf("unknown goal %q (want max, perquery, average, percentile)", name)
		return nil
	}
}
