// Command wisedb is a small CLI over the WiSeDB advisor: it trains decision
// models, schedules batch workloads, recommends service tiers, simulates
// online arrival streams, and manages durable model files — all against the
// synthetic TPC-H-like environment of the paper's evaluation (§7.1).
//
// Usage:
//
//	wisedb train [-o model.wsdb]      # train a model; optionally persist it
//	wisedb schedule [-model m.wsdb]   # train/load + schedule a random batch
//	wisedb recommend                  # derive k service tiers with cost estimates
//	wisedb online [-model m.wsdb]     # simulate an online arrival stream
//	wisedb serve [-store DIR] [-checkpoint]
//	                                  # drive K concurrent tenant streams
//	wisedb serve -listen :7070 [-http :7071]
//	                                  # run as a long-lived network daemon
//	wisedb load -addr HOST:7070 -conns 200
//	                                  # drive a daemon over the wire
//	wisedb inspect PATH               # dump a model file's (or store dir's)
//	                                  # header, mix histogram, and lineage
//
// Flags may come before or after the subcommand. Common flags select the
// goal (-goal max|perquery|average|percentile), the environment
// (-templates, -vmtypes), training scale (-samples, -size), and the
// workload (-queries, -seed). serve adds -streams, -skew / -shift-at
// (inject a template-mix shift mid-stream), and -drift-window (detect it
// via EMD and hot-swap an adapted model).
//
// serve scales out: streams are tenants placed onto engine shards by
// consistent hashing (-shards, default one per core), and -registries N
// hosts N model registries (tenant tiers) with independent drift-retrain
// lifecycles — tenants bind to them round-robin. `wisedb serve
// -streams 10000 -queries 4` is the 10k-stream load-generator mode; the
// summary reports migrations, shared retrains, and ω-map build counts.
//
// serve can also run under chaos: -chaos-seed arms deterministic fault
// injection (-vm-failure-rate kills rented VMs mid-stream, -fail-retrains
// fails the first K drift retrains, -flaky-checkpoints makes checkpoint
// writes transiently fail), -degrade enables graceful fallback to
// first-fit heuristic scheduling when the epoch model is unusable, and
// -max-backlog sheds new arrivals admission-control style while degraded.
// The summary then adds the failure-path counters: retrain backoff and
// circuit-breaker state, checkpoint retries, degraded/shed arrivals, and
// queries re-admitted after VM failures.
//
// With -listen, serve becomes the overload-safe network daemon instead:
// a TCP listener speaking the internal/wire framing (one connection per
// tenant stream) with an HTTP sidecar (-http) for /healthz, /readyz, and
// /stats. -admit-rate/-admit-burst arm token-bucket admission control
// that sheds before the engine sees a query, -deadline bounds each
// placement, -max-conns caps connections, and SIGTERM drains gracefully:
// stop accepting, flush in-flight streams exactly once, checkpoint every
// registry, exit. With -chaos-seed, -drop-rate/-stall-rate inject
// dropped and stalled connections at the listener. `wisedb load` is the
// matching load generator: -conns pipelined client connections (window
// -window) driving virtual arrivals -delay apart, with jittered-backoff
// dial retries; it reports wire throughput and ack-latency percentiles.
//
// Model persistence: `wisedb train -o m.wsdb && wisedb serve -model m.wsdb`
// serves with zero training searches at startup. With -store DIR the
// server warm-starts from the newest checkpointed epoch in DIR (training
// only if the store is empty) and — with -checkpoint, the default —
// commits every drift-retrained epoch back to it, so a crash loses at most
// the epoch being written; -model with -store is rejected (the store
// defines what serves). `wisedb inspect` reads headers and lineage
// without ever decoding a decision tree.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"wisedb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wisedb: ")

	goalName := flag.String("goal", "max", "performance goal: max, perquery, average, percentile")
	numTemplates := flag.Int("templates", 10, "number of query templates")
	numTypes := flag.Int("vmtypes", 1, "number of VM types")
	samples := flag.Int("samples", 500, "training sample workloads (N)")
	sampleSize := flag.Int("size", 12, "queries per training sample (m)")
	queries := flag.Int("queries", 100, "workload size for schedule/online")
	seed := flag.Int64("seed", 1, "random seed")
	tiers := flag.Int("k", 3, "service tiers for recommend")
	delay := flag.Duration("delay", 10*time.Second, "inter-arrival delay for online/serve")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for training (0 = all cores); serve concurrency comes from -shards")
	streams := flag.Int("streams", 16, "concurrent tenant streams for serve")
	shards := flag.Int("shards", 0, "serve: engine shards for consistent-hash tenant placement (0 = one per core)")
	registries := flag.Int("registries", 1, "serve: model registries (tenant tiers); streams bind round-robin")
	skew := flag.Float64("skew", 0, "serve: template-mix skew injected mid-stream (0 = no shift, up to 1)")
	shiftAt := flag.Float64("shift-at", 0.5, "serve: fraction of each stream after which the mix shifts")
	driftWindow := flag.Int("drift-window", 48, "serve: sliding-histogram size for EMD drift detection (0 = off)")
	outPath := flag.String("o", "", "train: persist the trained model at this path")
	modelPath := flag.String("model", "", "load a persisted model instead of training")
	storeDir := flag.String("store", "", "serve: durable model store directory (warm start + checkpoints)")
	checkpoint := flag.Bool("checkpoint", true, "serve: checkpoint hot-swapped epochs into -store")
	chaosSeed := flag.Int64("chaos-seed", 0, "serve: arm deterministic fault injection with this seed (0 = off)")
	vmFailureRate := flag.Float64("vm-failure-rate", 0.3, "serve: probability each rented VM fails mid-stream (with -chaos-seed)")
	failRetrains := flag.Int("fail-retrains", 0, "serve: fail the first K drift retrains per registry (with -chaos-seed)")
	flakyCheckpoints := flag.Int("flaky-checkpoints", 0, "serve: fail the first K checkpoint writes transiently (with -chaos-seed)")
	degrade := flag.Bool("degrade", false, "serve: fall back to heuristic scheduling when the epoch model is unusable")
	maxBacklog := flag.Int("max-backlog", 0, "serve: shed new arrivals above this backlog while degraded (0 = never shed)")
	listen := flag.String("listen", "", "serve: run as a network daemon on this TCP address instead of the in-process load generator")
	httpAddr := flag.String("http", "", "serve daemon: HTTP sidecar address for /healthz, /readyz, /stats")
	maxConns := flag.Int("max-conns", 1024, "serve daemon: concurrent connection cap")
	admitRate := flag.Float64("admit-rate", 0, "serve daemon: token-bucket admission rate in queries/sec (0 = no admission control)")
	admitBurst := flag.Int("admit-burst", 0, "serve daemon: admission token-bucket depth (0 = one second of -admit-rate)")
	deadline := flag.Duration("deadline", 0, "placement deadline: serve daemon default, load per-request (0 = none)")
	drainGrace := flag.Duration("drain-grace", 10*time.Second, "serve daemon: how long a drain waits for in-flight connections")
	dropRate := flag.Float64("drop-rate", 0, "serve daemon: probability a connection is dropped mid-stream (with -chaos-seed)")
	stallRate := flag.Float64("stall-rate", 0, "serve daemon: probability a connection stalls once (with -chaos-seed)")
	loadAddr := flag.String("addr", "127.0.0.1:7070", "load: daemon address to drive")
	conns := flag.Int("conns", 100, "load: concurrent client connections")
	window := flag.Int("window", 64, "load: pipelined submit frames in flight per connection")
	loadRegistry := flag.String("registry", "", "load: registry tier to bind streams to (empty = default)")
	flag.Parse()

	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	// Accept flags after the subcommand too: `wisedb train -o m.wsdb`.
	if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
		os.Exit(2)
	}

	if cmd == "inspect" {
		if flag.NArg() != 1 {
			log.Fatal("inspect requires a model file or store directory path")
		}
		inspect(flag.Arg(0))
		return
	}
	// Every other subcommand takes flags only: a stray positional arg is
	// almost always a mistake (`wisedb train model.wsdb` without -o would
	// otherwise train, save nothing, and exit 0).
	if flag.NArg() != 0 {
		log.Fatalf("unexpected argument %q after %s (did you mean a flag?)", flag.Arg(0), cmd)
	}

	// Reject incoherent flag combinations before any training or store
	// I/O happens.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := validateFlags(cmd, explicit, *modelPath, *storeDir, *registries, *streams, *listen); err != nil {
		log.Fatal(err)
	}

	if cmd == "load" {
		runLoad(loadConfig{
			addr: *loadAddr, conns: *conns, queries: *queries, window: *window,
			delay: *delay, deadline: *deadline, registry: *loadRegistry, seed: *seed,
		})
		return
	}

	templates := wisedb.DefaultTemplates(*numTemplates)
	env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(*numTypes))
	goal := makeGoal(*goalName, templates)

	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = *samples
	cfg.SampleSize = *sampleSize
	cfg.Seed = *seed
	cfg.Parallelism = *parallelism
	advisor, err := wisedb.NewAdvisor(env, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// getModel loads a persisted model (-model, zero training searches) or
	// trains one. A loaded model carries its own goal and environment.
	getModel := func() *wisedb.Model {
		if *modelPath == "" {
			return mustTrain(advisor, goal)
		}
		m, err := advisor.LoadModel(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loaded %s model from %s (zero training searches)\n", m.Goal.Name(), *modelPath)
		return m
	}

	switch cmd {
	case "train":
		model := getModel()
		fmt.Printf("trained in %s on %d decisions; tree height %d, %d leaves\n\n",
			model.TrainingTime.Round(time.Millisecond), model.TrainingRows,
			model.Tree.Height(), model.Tree.NumLeaves())
		fmt.Print(model.Dump())
		if *outPath != "" {
			if err := advisor.SaveModel(*outPath, model); err != nil {
				log.Fatal(err)
			}
			size := int64(0)
			if fi, err := os.Stat(*outPath); err == nil {
				size = fi.Size()
			}
			fmt.Printf("\nsaved %s (%d bytes, format v%d)\n", *outPath, size, wisedb.ModelFormatVersion)
		}

	case "schedule":
		model := getModel()
		w := wisedb.NewSampler(model.Env().Templates, *seed+100).Uniform(*queries)
		start := time.Now()
		sched, err := model.ScheduleBatch(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scheduled %d queries onto %d VMs in %s\n",
			*queries, len(sched.VMs), time.Since(start).Round(time.Microsecond))
		fmt.Printf("provisioning %.2f¢ + penalty %.2f¢ = total %.2f¢\n",
			sched.ProvisioningCost(model.Env()), sched.Penalty(model.Env(), model.Goal), sched.Cost(model.Env(), model.Goal))

	case "recommend":
		rec := wisedb.DefaultRecommendConfig()
		rec.K = *tiers
		strategies, err := advisor.Recommend(goal, rec)
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, *numTemplates)
		for i := range counts {
			counts[i] = *queries / *numTemplates
		}
		fmt.Printf("%d service tiers (estimated cost for %d-query uniform workload):\n", len(strategies), *queries)
		for i, s := range strategies {
			fmt.Printf("  tier %d: %-60s est. %.2f¢\n", i+1, s.Model.Goal.Key(), s.EstimateCost(counts))
		}

	case "online":
		model := getModel()
		w := wisedb.NewSampler(model.Env().Templates, *seed+100).Uniform(*queries)
		arrivals := make([]time.Duration, *queries)
		for i := range arrivals {
			arrivals[i] = time.Duration(i) * *delay
		}
		res, err := wisedb.NewOnlineScheduler(model, wisedb.DefaultOnlineOptions()).Run(w.WithArrivals(arrivals))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("online: %d queries, %d VMs, cost %.2f¢ (penalty %.2f¢)\n",
			len(res.Perf), res.VMsRented, res.Cost, res.Penalty)
		fmt.Printf("advisor overhead %s total (%d retrainings, %d adaptations, %d cache hits)\n",
			res.SchedulingTime.Round(time.Millisecond), res.Retrainings, res.Adaptations, res.CacheHits)

	case "serve":
		opts := wisedb.DefaultOnlineOptions()
		opts.Drift = wisedb.DriftOptions{Window: *driftWindow}
		opts.Shards = *shards
		opts.Degrade = *degrade
		opts.MaxBacklog = *maxBacklog
		engine, ms := buildServeEngine(opts, getModel, *storeDir, *checkpoint)
		base := engine.Registry().Current().Model
		// Tenant tiers: registry 0 is the engine's default; each extra one
		// shares the base model but retrains (and checkpoints) on its own.
		regNames := []string{""}
		for i := 1; i < *registries; i++ {
			name := fmt.Sprintf("tier-%d", i)
			if _, err := engine.AddRegistry(name, base); err != nil {
				log.Fatal(err)
			}
			regNames = append(regNames, name)
		}
		var spec wisedb.ChaosSpec
		if *chaosSeed != 0 {
			spec = wisedb.ChaosSpec{
				Seed: *chaosSeed,
				VM: wisedb.FaultSpec{
					VMFailureRate: *vmFailureRate,
					VMMinLifetime: time.Minute,
					// Failures must land inside the stream's span to matter.
					VMMaxLifetime: time.Duration(*queries) * *delay,
				},
				RetrainFailures:             *failRetrains,
				CheckpointTransientFailures: *flakyCheckpoints,
			}
			for _, name := range regNames {
				r := engine.Registry()
				if name != "" {
					r = engine.RegistryNamed(name)
				}
				if *failRetrains > 0 {
					r.SetRetrain(spec.Retrain(wisedb.DriftRetrain))
				}
			}
			if ms != nil && *flakyCheckpoints > 0 {
				ms.SetPayloadWriter(spec.PayloadWriter())
			}
			fmt.Fprintf(os.Stderr, "chaos armed: seed %d, VM failure rate %.2f, failing first %d retrains, %d flaky checkpoint writes\n",
				*chaosSeed, *vmFailureRate, *failRetrains, *flakyCheckpoints)
		}
		if *listen != "" {
			// Network daemon mode: serve until SIGTERM, then drain. The
			// in-process load-generator knobs (-streams, -queries, -delay)
			// do not apply; drive it with `wisedb load`.
			if (*dropRate > 0 || *stallRate > 0) && *chaosSeed == 0 {
				log.Fatal("-drop-rate and -stall-rate require -chaos-seed")
			}
			if *chaosSeed != 0 {
				spec.Net = wisedb.NetFaultSpec{DropRate: *dropRate, StallRate: *stallRate}
			}
			runDaemon(engine, ms, daemonConfig{
				listen: *listen, httpAddr: *httpAddr, maxConns: *maxConns,
				admitRate: *admitRate, admitBurst: *admitBurst,
				deadline: *deadline, drainGrace: *drainGrace,
				chaos: spec,
			})
			return
		}
		// Generate load against the serving model's own template set: a
		// loaded or warm-started model defines its environment.
		serve(engine, base.Env().Templates, serveConfig{
			streams: *streams, queries: *queries, delay: *delay, seed: *seed,
			skew: *skew, shiftAt: *shiftAt,
			registries: regNames,
			chaos:      spec,
		})
		if ms != nil {
			if latest, ok := ms.LatestEpoch(); ok {
				fmt.Printf("model store %s: latest epoch %d of %d on disk\n", ms.Dir(), latest, len(ms.Entries()))
			}
		}

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// buildServeEngine assembles the serving engine: warm start from the model
// store when it has epochs, otherwise train a base model — and attach
// checkpointing so every future hot swap lands durably. (-model with
// -store is rejected up front by validateFlags: a non-empty store defines
// what serves, and silently discarding an explicitly named model would
// mislead the operator.)
func buildServeEngine(opts wisedb.OnlineOptions, getModel func() *wisedb.Model, storeDir string, checkpoint bool) (*wisedb.OnlineScheduler, *wisedb.ModelStore) {
	if storeDir == "" {
		return wisedb.NewOnlineScheduler(getModel(), opts), nil
	}
	ms, err := wisedb.OpenModelStore(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := wisedb.NewOnlineSchedulerFromStore(ms, opts)
	switch {
	case err == nil:
		ep := engine.Registry().Current()
		fmt.Fprintf(os.Stderr, "warm start: serving epoch %d from %s (zero training searches)\n", ep.Epoch, storeDir)
	case errors.Is(err, wisedb.ErrEmptyStore):
		fmt.Fprintf(os.Stderr, "model store %s is empty; bootstrapping a base model\n", storeDir)
		engine = wisedb.NewOnlineScheduler(getModel(), opts)
	default:
		log.Fatal(err)
	}
	if checkpoint {
		if err := engine.Registry().CheckpointTo(ms); err != nil {
			log.Fatal(err)
		}
	}
	return engine, ms
}

// serveConfig bundles the load-generator knobs of the serve mode.
type serveConfig struct {
	streams, queries int
	delay            time.Duration
	seed             int64
	skew, shiftAt    float64
	registries       []string         // tier names; "" is the default registry
	chaos            wisedb.ChaosSpec // zero value injects nothing
}

// serve drives K tenant streams through one serving engine at full speed
// (virtual arrival clocks, real concurrency): tenants are placed onto the
// engine's shards by consistent hashing and bound round-robin to its
// registries. The summary reports throughput, tail advisor latency, SLA
// violations, the scale-out counters, and — when a mix shift is injected —
// each registry's drift detections, hot swaps, and checkpoints.
func serve(engine *wisedb.OnlineScheduler, templates []wisedb.Template, cfg serveConfig) {
	tenants := make([]wisedb.Tenant, cfg.streams)
	shift := int(float64(cfg.queries) * cfg.shiftAt)
	k := len(templates)
	for i := range tenants {
		sampler := wisedb.NewSampler(templates, cfg.seed+int64(i)*101)
		var queries []wisedb.Query
		if cfg.skew > 0 {
			head := sampler.Uniform(shift)
			tail := sampler.Weighted(cfg.queries-shift, wisedb.SkewWeights(k, cfg.skew, k-1))
			queries = append(queries, head.Queries...)
			for _, q := range tail.Queries {
				q.Tag += shift
				queries = append(queries, q)
			}
		} else {
			queries = sampler.Uniform(cfg.queries).Queries
		}
		arrivals := make([]time.Duration, len(queries))
		for j := range arrivals {
			arrivals[j] = time.Duration(j) * cfg.delay
		}
		w := &wisedb.Workload{Templates: templates, Queries: queries}
		tenants[i] = wisedb.Tenant{
			ID:       wisedb.HashTenantID(fmt.Sprintf("tenant-%05d", i)),
			Registry: cfg.registries[i%len(cfg.registries)],
			Workload: w.WithArrivals(arrivals),
			Faults:   cfg.chaos.VMPlan(i), // nil unless chaos is armed
		}
	}

	start := time.Now()
	results, err := engine.RunTenants(context.Background(), tenants)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	// Drain every registry's background retrains and checkpoints.
	registryOf := func(name string) *wisedb.ModelRegistry {
		if name == "" {
			return engine.Registry()
		}
		return engine.RegistryNamed(name)
	}
	for _, name := range cfg.registries {
		registryOf(name).Wait()
	}

	totalArrivals, rented := 0, 0
	cost := 0.0
	var advisor []time.Duration
	var driftTriggers, driftSuppressed, readmitted int
	for _, res := range results {
		totalArrivals += len(res.PerArrival)
		rented += res.VMsRented
		cost += res.Cost
		advisor = append(advisor, res.PerArrival...)
		driftTriggers += res.DriftTriggers
		driftSuppressed += res.DriftSuppressed
		readmitted += res.FaultReadmissions
	}
	sort.Slice(advisor, func(i, j int) bool { return advisor[i] < advisor[j] })
	pct := func(p float64) time.Duration {
		if len(advisor) == 0 {
			return 0
		}
		idx := int(p / 100 * float64(len(advisor)-1))
		return advisor[idx]
	}

	fmt.Printf("served %d streams x %d queries in %s: %.0f arrivals/sec\n",
		cfg.streams, cfg.queries, elapsed.Round(time.Millisecond),
		float64(totalArrivals)/elapsed.Seconds())
	fmt.Printf("advisor latency p50 %s  p99 %s; %d VMs rented, total cost %.2f¢\n",
		pct(50).Round(time.Microsecond), pct(99).Round(time.Microsecond), rented, cost)
	scale := engine.ScaleStats()
	fmt.Printf("scale-out: %d shards (%d active), %d registries, %d migrations, %d shared retrains, ω-map %d builds / %d entries\n",
		scale.Shards, scale.ActiveShards, scale.Registries, scale.Migrations,
		scale.SharedRetrains, scale.CacheBuilds, scale.CacheEntries)
	// Lifecycle counters summed across registries; each tier detects drift
	// and hot-swaps on its own.
	var stats wisedb.RegistryStats
	for _, name := range cfg.registries {
		s := registryOf(name).Stats()
		stats.Triggers += s.Triggers
		stats.Swaps += s.Swaps
		stats.Failures += s.Failures
		stats.Checkpoints += s.Checkpoints
		stats.CheckpointFailures += s.CheckpointFailures
		if s.Epoch > stats.Epoch {
			stats.Epoch = s.Epoch
		}
		if s.LastErr != nil {
			stats.LastErr = s.LastErr
		}
		if s.LastCheckpointErr != nil {
			stats.LastCheckpointErr = s.LastCheckpointErr
		}
	}
	fmt.Printf("model lifecycle: %d drift triggers, %d retrains, %d hot swaps, newest epoch %d\n",
		driftTriggers, stats.Triggers, stats.Swaps, stats.Epoch)
	if stats.Checkpoints > 0 || stats.CheckpointFailures > 0 {
		fmt.Printf("checkpoints: %d committed, %d failed\n", stats.Checkpoints, stats.CheckpointFailures)
	}
	// Failure-path counters: silent unless something actually degraded,
	// shed, retried, or tripped — a healthy run's summary stays unchanged.
	// stats.Failures is the authoritative retrain-failure count: streams only
	// tally DriftFailures for synchronous retrains, while the registry counts
	// background failures too.
	rb := scale.Robustness
	if stats.Failures > 0 || driftSuppressed > 0 || rb.BackoffSuppressed > 0 || rb.BreakerOpens > 0 || rb.Breaker != "closed" {
		fmt.Printf("retrain failures: %d failed, %d suppressed (backoff %d, breaker rejected %d); breaker %s (%d opens, %d closes)\n",
			stats.Failures, driftSuppressed, rb.BackoffSuppressed, rb.BreakerRejected,
			rb.Breaker, rb.BreakerOpens, rb.BreakerCloses)
	}
	if rb.CheckpointRetries > 0 {
		fmt.Printf("checkpoint retries: %d\n", rb.CheckpointRetries)
	}
	if scale.DegradedArrivals > 0 || scale.DegradedPlacements > 0 || scale.ShedArrivals > 0 || readmitted > 0 {
		fmt.Printf("degradation: %d degraded arrivals, %d rerouted placements, %d shed arrivals, %d queries re-admitted after VM failures\n",
			scale.DegradedArrivals, scale.DegradedPlacements, scale.ShedArrivals, readmitted)
	}
	if stats.LastErr != nil {
		fmt.Printf("last retrain error: %v\n", stats.LastErr)
	}
	if stats.LastCheckpointErr != nil {
		fmt.Printf("last checkpoint error: %v\n", stats.LastCheckpointErr)
	}
}

// inspect dumps a model file's header, provenance, and mix histogram — or,
// for a store directory, its manifest lineage — without decoding any
// decision tree.
func inspect(path string) {
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	if fi.IsDir() {
		inspectStore(path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	info, err := wisedb.InspectModel(data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: WiSeDB model container v%d, %d bytes, hash %016x\n", path, info.FormatVersion, len(data), info.Hash)
	var parts []string
	for _, s := range info.Sections {
		parts = append(parts, fmt.Sprintf("%s %s", wisedb.ModelSectionName(s.ID), formatBytes(s.Len)))
	}
	fmt.Printf("sections: %s\n", strings.Join(parts, " · "))
	fmt.Printf("goal: %s (%s)\n", info.Goal.Name(), info.Goal.Key())
	cfg := info.Config
	fmt.Printf("trained: N=%d m=%d seed=%d in %s -> %d rows; search cache %d hits / %d misses\n",
		cfg.NumSamples, cfg.SampleSize, cfg.Seed, info.TrainingTime.Round(time.Millisecond),
		info.TrainingRows, info.CacheHits, info.CacheMisses)
	if info.WarmSamples > 0 {
		fmt.Printf("warm retrain: %d samples replayed, %d solved fresh\n", info.WarmSamples, info.ColdSamples)
	}
	fmt.Printf("environment: %d templates x %d VM types; training data retained: %v; search cache persisted: %v\n",
		len(info.Templates), len(info.VMTypes), info.HasTrainingData, info.HasSearchCache)
	mix := info.Mix
	if mix == nil {
		fmt.Println("training mix: uniform")
		return
	}
	fmt.Println("training mix histogram:")
	max := 0.0
	for _, w := range mix {
		if w > max {
			max = w
		}
	}
	for i, w := range mix {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(w/max*30+0.5))
		}
		name := fmt.Sprintf("T%d", i)
		if i < len(info.Templates) {
			name = info.Templates[i].Name
		}
		fmt.Printf("  %-12s %.3f %s\n", name, w, bar)
	}
}

// inspectStore prints a model store's lineage chain.
func inspectStore(dir string) {
	ms, err := wisedb.OpenModelStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	entries := ms.Entries()
	fmt.Printf("%s: model store, %d epochs\n", dir, len(entries))
	if q := ms.Quarantined(); len(q) > 0 {
		fmt.Printf("quarantined: %d corrupt file(s) set aside: %s\n", len(q), strings.Join(q, ", "))
	}
	if len(entries) == 0 {
		return
	}
	fmt.Printf("%7s %7s %-7s %8s %10s %7s %5s %6s %-20s %s\n",
		"epoch", "parent", "reason", "emd", "size", "retrain", "warm", "cache", "saved-at", "model-hash")
	for _, e := range entries {
		emd := "-"
		if e.EMD > 0 {
			emd = fmt.Sprintf("%.3f", e.EMD)
		}
		// Retrain cost and warm-reuse columns are recorded by drift
		// retrains only; base/manual/drain epochs show "-".
		retrain, warm, cache := "-", "-", "-"
		if e.RetrainMS > 0 {
			retrain = fmt.Sprintf("%dms", e.RetrainMS)
		}
		if e.WarmSamples+e.ColdSamples > 0 {
			warm = fmt.Sprintf("%d/%d", e.WarmSamples, e.WarmSamples+e.ColdSamples)
		}
		if total := e.CacheHits + e.CacheMisses; total > 0 {
			cache = fmt.Sprintf("%.0f%%", 100*float64(e.CacheHits)/float64(total))
		}
		fmt.Printf("%7d %7d %-7s %8s %10s %7s %5s %6s %-20s %016x\n",
			e.Epoch, e.Parent, e.Reason, emd, formatBytes(int(e.Size)), retrain, warm, cache,
			e.SavedAt.Format("2006-01-02T15:04:05Z"), e.ModelHash)
	}
}

// formatBytes renders a byte count compactly.
func formatBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func mustTrain(advisor *wisedb.Advisor, goal wisedb.Goal) *wisedb.Model {
	fmt.Fprintf(os.Stderr, "training %s model...\n", goal.Name())
	model, err := advisor.Train(goal)
	if err != nil {
		log.Fatal(err)
	}
	return model
}

func makeGoal(name string, templates []wisedb.Template) wisedb.Goal {
	switch name {
	case "max":
		return wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)
	case "perquery":
		return wisedb.NewPerQuery(3, templates, wisedb.DefaultPenaltyRate)
	case "average":
		return wisedb.NewAverage(10*time.Minute, templates, wisedb.DefaultPenaltyRate)
	case "percentile":
		return wisedb.NewPercentile(90, 10*time.Minute, templates, wisedb.DefaultPenaltyRate)
	default:
		log.Fatalf("unknown goal %q (want max, perquery, average, percentile)", name)
		return nil
	}
}
