// Command wisedb is a small CLI over the WiSeDB advisor: it trains decision
// models, schedules batch workloads, recommends service tiers, and simulates
// online arrival streams — all against the synthetic TPC-H-like environment
// of the paper's evaluation (§7.1).
//
// Usage:
//
//	wisedb [flags] train      # train a model and dump the decision tree
//	wisedb [flags] schedule   # train + schedule a random batch, print costs
//	wisedb [flags] recommend  # derive k service tiers with cost estimates
//	wisedb [flags] online     # simulate an online arrival stream
//	wisedb [flags] serve      # drive K concurrent tenant streams (load generator)
//
// Common flags select the goal (-goal max|perquery|average|percentile), the
// environment (-templates, -vmtypes), training scale (-samples, -size), and
// the workload (-queries, -seed). serve adds -streams, -skew / -shift-at
// (inject a template-mix shift mid-stream), and -drift-window (detect it via
// EMD and hot-swap an adapted model).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"wisedb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wisedb: ")

	goalName := flag.String("goal", "max", "performance goal: max, perquery, average, percentile")
	numTemplates := flag.Int("templates", 10, "number of query templates")
	numTypes := flag.Int("vmtypes", 1, "number of VM types")
	samples := flag.Int("samples", 500, "training sample workloads (N)")
	sampleSize := flag.Int("size", 12, "queries per training sample (m)")
	queries := flag.Int("queries", 100, "workload size for schedule/online")
	seed := flag.Int64("seed", 1, "random seed")
	tiers := flag.Int("k", 3, "service tiers for recommend")
	delay := flag.Duration("delay", 10*time.Second, "inter-arrival delay for online/serve")
	parallelism := flag.Int("parallelism", 0, "worker goroutines for training and serve streams (0 = all cores)")
	streams := flag.Int("streams", 16, "concurrent tenant streams for serve")
	skew := flag.Float64("skew", 0, "serve: template-mix skew injected mid-stream (0 = no shift, up to 1)")
	shiftAt := flag.Float64("shift-at", 0.5, "serve: fraction of each stream after which the mix shifts")
	driftWindow := flag.Int("drift-window", 48, "serve: sliding-histogram size for EMD drift detection (0 = off)")
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	templates := wisedb.DefaultTemplates(*numTemplates)
	env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(*numTypes))
	goal := makeGoal(*goalName, templates)

	cfg := wisedb.DefaultTrainConfig()
	cfg.NumSamples = *samples
	cfg.SampleSize = *sampleSize
	cfg.Seed = *seed
	cfg.Parallelism = *parallelism
	advisor, err := wisedb.NewAdvisor(env, cfg)
	if err != nil {
		log.Fatal(err)
	}

	switch flag.Arg(0) {
	case "train":
		model := mustTrain(advisor, goal)
		fmt.Printf("trained in %s on %d decisions; tree height %d, %d leaves\n\n",
			model.TrainingTime.Round(time.Millisecond), model.TrainingRows,
			model.Tree.Height(), model.Tree.NumLeaves())
		fmt.Print(model.Dump())

	case "schedule":
		model := mustTrain(advisor, goal)
		w := wisedb.NewSampler(templates, *seed+100).Uniform(*queries)
		start := time.Now()
		sched, err := model.ScheduleBatch(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scheduled %d queries onto %d VMs in %s\n",
			*queries, len(sched.VMs), time.Since(start).Round(time.Microsecond))
		fmt.Printf("provisioning %.2f¢ + penalty %.2f¢ = total %.2f¢\n",
			sched.ProvisioningCost(env), sched.Penalty(env, goal), sched.Cost(env, goal))

	case "recommend":
		rec := wisedb.DefaultRecommendConfig()
		rec.K = *tiers
		strategies, err := advisor.Recommend(goal, rec)
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, *numTemplates)
		for i := range counts {
			counts[i] = *queries / *numTemplates
		}
		fmt.Printf("%d service tiers (estimated cost for %d-query uniform workload):\n", len(strategies), *queries)
		for i, s := range strategies {
			fmt.Printf("  tier %d: %-60s est. %.2f¢\n", i+1, s.Model.Goal.Key(), s.EstimateCost(counts))
		}

	case "online":
		model := mustTrain(advisor, goal)
		w := wisedb.NewSampler(templates, *seed+100).Uniform(*queries)
		arrivals := make([]time.Duration, *queries)
		for i := range arrivals {
			arrivals[i] = time.Duration(i) * *delay
		}
		res, err := wisedb.NewOnlineScheduler(model, wisedb.DefaultOnlineOptions()).Run(w.WithArrivals(arrivals))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("online: %d queries, %d VMs, cost %.2f¢ (penalty %.2f¢)\n",
			len(res.Perf), res.VMsRented, res.Cost, res.Penalty)
		fmt.Printf("advisor overhead %s total (%d retrainings, %d adaptations, %d cache hits)\n",
			res.SchedulingTime.Round(time.Millisecond), res.Retrainings, res.Adaptations, res.CacheHits)

	case "serve":
		model := mustTrain(advisor, goal)
		serve(model, templates, serveConfig{
			streams: *streams, queries: *queries, delay: *delay, seed: *seed,
			skew: *skew, shiftAt: *shiftAt, driftWindow: *driftWindow,
			parallelism: *parallelism,
		})

	default:
		flag.Usage()
		os.Exit(2)
	}
}

// serveConfig bundles the load-generator knobs of the serve mode.
type serveConfig struct {
	streams, queries         int
	delay                    time.Duration
	seed                     int64
	skew, shiftAt            float64
	driftWindow, parallelism int
}

// serve drives K concurrent tenant streams through one serving engine at
// full speed (virtual arrival clocks, real concurrency) and reports
// throughput, tail advisor latency, SLA violations, and — when a mix shift
// is injected — the registry's drift detections and hot swaps.
func serve(model *wisedb.Model, templates []wisedb.Template, cfg serveConfig) {
	opts := wisedb.DefaultOnlineOptions()
	opts.Drift = wisedb.DriftOptions{Window: cfg.driftWindow}
	engine := wisedb.NewOnlineScheduler(model, opts)

	ws := make([]*wisedb.Workload, cfg.streams)
	shift := int(float64(cfg.queries) * cfg.shiftAt)
	k := len(templates)
	for i := range ws {
		sampler := wisedb.NewSampler(templates, cfg.seed+int64(i)*101)
		var queries []wisedb.Query
		if cfg.skew > 0 {
			head := sampler.Uniform(shift)
			tail := sampler.Weighted(cfg.queries-shift, wisedb.SkewWeights(k, cfg.skew, k-1))
			queries = append(queries, head.Queries...)
			for _, q := range tail.Queries {
				q.Tag += shift
				queries = append(queries, q)
			}
		} else {
			queries = sampler.Uniform(cfg.queries).Queries
		}
		arrivals := make([]time.Duration, len(queries))
		for j := range arrivals {
			arrivals[j] = time.Duration(j) * cfg.delay
		}
		w := &wisedb.Workload{Templates: templates, Queries: queries}
		ws[i] = w.WithArrivals(arrivals)
	}

	start := time.Now()
	results, err := engine.RunStreams(context.Background(), ws, cfg.parallelism)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	engine.Registry().Wait() // drain any background retrain before reporting

	totalArrivals, rented := 0, 0
	cost := 0.0
	var advisor []time.Duration
	var driftTriggers int
	for _, res := range results {
		totalArrivals += len(res.PerArrival)
		rented += res.VMsRented
		cost += res.Cost
		advisor = append(advisor, res.PerArrival...)
		driftTriggers += res.DriftTriggers
	}
	sort.Slice(advisor, func(i, j int) bool { return advisor[i] < advisor[j] })
	pct := func(p float64) time.Duration {
		if len(advisor) == 0 {
			return 0
		}
		idx := int(p / 100 * float64(len(advisor)-1))
		return advisor[idx]
	}

	fmt.Printf("served %d streams x %d queries in %s: %.0f arrivals/sec\n",
		cfg.streams, cfg.queries, elapsed.Round(time.Millisecond),
		float64(totalArrivals)/elapsed.Seconds())
	fmt.Printf("advisor latency p50 %s  p99 %s; %d VMs rented, total cost %.2f¢\n",
		pct(50).Round(time.Microsecond), pct(99).Round(time.Microsecond), rented, cost)
	stats := engine.Registry().Stats()
	fmt.Printf("model lifecycle: %d drift triggers, %d retrains, %d hot swaps, final epoch %d, %d derived-model builds\n",
		driftTriggers, stats.Triggers, stats.Swaps, stats.Epoch, engine.CacheStats())
	if stats.LastErr != nil {
		fmt.Printf("last retrain error: %v\n", stats.LastErr)
	}
}

func mustTrain(advisor *wisedb.Advisor, goal wisedb.Goal) *wisedb.Model {
	fmt.Fprintf(os.Stderr, "training %s model...\n", goal.Name())
	model, err := advisor.Train(goal)
	if err != nil {
		log.Fatal(err)
	}
	return model
}

func makeGoal(name string, templates []wisedb.Template) wisedb.Goal {
	switch name {
	case "max":
		return wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)
	case "perquery":
		return wisedb.NewPerQuery(3, templates, wisedb.DefaultPenaltyRate)
	case "average":
		return wisedb.NewAverage(10*time.Minute, templates, wisedb.DefaultPenaltyRate)
	case "percentile":
		return wisedb.NewPercentile(90, 10*time.Minute, templates, wisedb.DefaultPenaltyRate)
	default:
		log.Fatalf("unknown goal %q (want max, perquery, average, percentile)", name)
		return nil
	}
}
