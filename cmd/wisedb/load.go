package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"wisedb"
)

// loadConfig bundles the load-generator knobs of the load subcommand.
type loadConfig struct {
	addr                   string
	conns, queries, window int
	delay, deadline        time.Duration
	registry               string
	seed                   int64
}

// connStats is one connection's accounting, written by its goroutine
// only.
type connStats struct {
	admitted, shed int
	lat            []time.Duration // per-ack round trip, Send to Ack
	res            wisedb.ClientResult
	finished       bool
	err            error
}

// runLoad drives the serving daemon from many concurrent connections,
// each one tenant stream pipelining a window of Submit frames. Dials
// retry with the registry's jittered-backoff schedule, so a fleet of
// load generators restarting against a busy daemon spreads itself out.
// Arrival instants are virtual (spaced -delay apart), so wire
// throughput — not simulated query latency — is what's measured.
func runLoad(cfg loadConfig) {
	stats := make([]connStats, cfg.conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := range stats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			driveConn(&stats[i], i, cfg)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var admitted, shed, dialFailures, finished int
	var completed, resultShed uint64
	var cost, penalty float64
	var epoch uint64
	var lat []time.Duration
	var firstErr error
	for i := range stats {
		cs := &stats[i]
		if cs.err != nil {
			dialFailures++
			if firstErr == nil {
				firstErr = cs.err
			}
			continue
		}
		admitted += cs.admitted
		shed += cs.shed
		lat = append(lat, cs.lat...)
		if cs.finished {
			finished++
			completed += uint64(cs.res.Completed)
			resultShed += uint64(cs.res.Shed)
			cost += cs.res.Cost
			penalty += cs.res.Penalty
			if cs.res.Epoch > epoch {
				epoch = cs.res.Epoch
			}
		}
	}
	if admitted+shed == 0 {
		log.Fatalf("no arrivals reached the daemon (%d/%d dials failed, first error: %v)", dialFailures, cfg.conns, firstErr)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		return lat[int(p/100*float64(len(lat)-1))]
	}
	fmt.Printf("load: %d conns x %d queries in %s: %.0f arrivals/sec over the wire\n",
		cfg.conns, cfg.queries, elapsed.Round(time.Millisecond),
		float64(admitted+shed)/elapsed.Seconds())
	fmt.Printf("admitted %d, shed %d at admission; ack latency p50 %s  p99 %s\n",
		admitted, shed, pct(50).Round(time.Microsecond), pct(99).Round(time.Microsecond))
	fmt.Printf("streams finished %d/%d (%d dial failures); server completed %d, cost %.2f¢ (penalty %.2f¢), newest epoch %d\n",
		finished, cfg.conns, dialFailures, completed, cost, penalty, epoch)
	if dialFailures > 0 && firstErr != nil {
		fmt.Printf("first dial error: %v\n", firstErr)
	}
}

// driveConn runs one connection's stream: a pipelined window of Submit
// frames, then Finish. Ack latencies are tracked FIFO — the server acks
// in submit order over one ordered connection.
func driveConn(cs *connStats, id int, cfg loadConfig) {
	c, err := wisedb.DialServer(cfg.addr, wisedb.ClientOptions{
		Clock:    wisedb.ClockVirtual,
		Registry: cfg.registry,
		Tenant:   fmt.Sprintf("load-%05d", id),
		Retry:    wisedb.DefaultRetryPolicy(),
		Seed:     uint64(cfg.seed) + uint64(id),
	})
	if err != nil {
		cs.err = err
		return
	}
	defer c.Close()

	// sendTimes is a FIFO ring of in-flight Send instants: acks arrive
	// in order, so each ReadAck pops the oldest.
	sendTimes := make([]time.Time, cfg.window+1)
	head, tail := 0, 0
	readAck := func() error {
		acc, shedN, _, err := c.ReadAck()
		if err != nil {
			return err
		}
		cs.admitted += acc
		cs.shed += shedN
		cs.lat = append(cs.lat, time.Since(sendTimes[head]))
		head = (head + 1) % len(sendTimes)
		return nil
	}
	// The Welcome advertises the serving model's template count; cycle
	// through all of them.
	k := int(c.Templates)
	if k == 0 {
		k = 1
	}
	q := []wisedb.WireQuery{{}}
	for i := 0; i < cfg.queries; i++ {
		q[0] = wisedb.WireQuery{Template: uint32(i % k), Tag: uint32(i)}
		sendTimes[tail] = time.Now()
		tail = (tail + 1) % len(sendTimes)
		if err := c.Send(q, time.Duration(i)*cfg.delay, cfg.deadline); err != nil {
			cs.err = err
			return
		}
		if c.Pending() >= cfg.window {
			if err := c.Flush(); err != nil {
				cs.err = err
				return
			}
			for c.Pending() > cfg.window/2 {
				if err := readAck(); err != nil {
					cs.err = err
					return
				}
			}
		}
	}
	if err := c.Flush(); err != nil {
		cs.err = err
		return
	}
	for c.Pending() > 0 {
		if err := readAck(); err != nil {
			cs.err = err
			return
		}
	}
	res, err := c.Finish()
	if err != nil {
		cs.err = err
		return
	}
	cs.res, cs.finished = res, true
}
