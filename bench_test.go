// Benchmarks regenerating each figure of the paper's evaluation (§7).
// One benchmark per figure, driving the same harness as cmd/experiments in
// its reduced Quick configuration so the full suite completes in minutes:
//
//	go test -bench=. -benchmem
//
// Full-scale numbers (paper workload sizes) come from `go run
// ./cmd/experiments all` and are recorded in EXPERIMENTS.md.
package wisedb_test

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"wisedb"
	"wisedb/internal/experiments"
)

// benchFig runs one figure once per benchmark iteration.
func benchFig(b *testing.B, run func(*experiments.Config) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cfg := experiments.QuickConfig(io.Discard)
		if _, err := run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: schedule cost vs the exact optimum for
// each of the four performance goals.
func BenchmarkFig9(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig9)
}

// BenchmarkFig10 regenerates Fig. 10: percent above optimal across workload
// sizes.
func BenchmarkFig10(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig10)
}

// BenchmarkFig11 regenerates Fig. 11: percent above optimal across goal
// strictness factors.
func BenchmarkFig11(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig11)
}

// BenchmarkFig12 regenerates Fig. 12: one vs two VM types against the
// respective optima.
func BenchmarkFig12(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig12)
}

// BenchmarkFig13 regenerates Fig. 13: WiSeDB vs FFD, FFI, and Pack9 on
// large batches.
func BenchmarkFig13(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig13)
}

// BenchmarkFig14 regenerates Fig. 14: training time vs template count.
func BenchmarkFig14(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig14)
}

// BenchmarkFig15 regenerates Fig. 15: training time vs VM type count.
func BenchmarkFig15(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig15)
}

// BenchmarkFig16 regenerates Fig. 16: adaptive re-training time vs SLA
// shift.
func BenchmarkFig16(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig16)
}

// BenchmarkFig17 regenerates Fig. 17: batch scheduling time vs workload
// size.
func BenchmarkFig17(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig17)
}

// BenchmarkFig18 regenerates Fig. 18: online scheduling cost vs the
// clairvoyant bound across arrival delays.
func BenchmarkFig18(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig18)
}

// BenchmarkFig19 regenerates Fig. 19: per-arrival online scheduling
// overhead under each optimization combination.
func BenchmarkFig19(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig19)
}

// BenchmarkFig20 regenerates Fig. 20: sensitivity to skewed workloads.
func BenchmarkFig20(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig20)
}

// BenchmarkFig21 regenerates Fig. 21: cost mean and range vs skew.
func BenchmarkFig21(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig21)
}

// BenchmarkFig22 regenerates Fig. 22: sensitivity to latency prediction
// error.
func BenchmarkFig22(b *testing.B) {
	benchFig(b, (*experiments.Config).Fig22)
}

// BenchmarkTrainParallel measures offline model generation (§4.2: N
// BenchmarkServeThroughput regenerates the multi-tenant serving throughput
// table: K concurrent streams over the shared worker pool, steady-state
// arrival path.
func BenchmarkServeThroughput(b *testing.B) {
	benchFig(b, (*experiments.Config).ServeThroughput)
}

// BenchmarkServeRecovery regenerates the shift-recovery table: injected
// template-mix shift, EMD drift detection, synchronous retrain + hot swap.
func BenchmarkServeRecovery(b *testing.B) {
	benchFig(b, (*experiments.Config).ServeRecovery)
}

// independent exact searches) sequentially and on the worker pool. The two
// runs produce bit-identical models — per-sample sub-seeds decouple sample i
// from the workers that drew samples 0..i-1 — so the workers=GOMAXPROCS run
// tracks the pure scheduling speedup in the perf trajectory (expect ~linear
// scaling on multi-core machines; the fold into the decision tree is the
// only sequential tail).
func BenchmarkTrainParallel(b *testing.B) {
	templates := wisedb.DefaultTemplates(8)
	env := wisedb.NewEnv(templates, wisedb.DefaultVMTypes(2))
	goal := wisedb.NewMaxLatency(15*time.Minute, templates, wisedb.DefaultPenaltyRate)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := wisedb.DefaultTrainConfig()
			cfg.NumSamples = 300
			cfg.SampleSize = 10
			cfg.Parallelism = workers
			cfg.KeepTrainingData = false
			advisor, err := wisedb.NewAdvisor(env, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := advisor.Train(goal); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
